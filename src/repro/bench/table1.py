"""Table 1 -- resilience to typos.

The paper injects three kinds of errors into the default configuration files
of MySQL, Postgres and Apache (Section 5.2):

* deletion of entire directives,
* typos in directive names (for each section, up to ten randomly selected
  directives get typos in their names),
* typos in directive values (same selection, typos in the values).

Outcomes are classified as detected at startup, detected by the functional
tests or ignored; the runner returns per-system profiles and renders the
Table 1 layout.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.core.engine import InjectionEngine
from repro.core.profile import ResilienceProfile
from repro.core.report import typo_resilience_table
from repro.core.views.token_view import TOKEN_DIRECTIVE_NAME, TOKEN_DIRECTIVE_VALUE, TokenView
from repro.bench.workloads import typo_benchmark_sut_factories
from repro.plugins.spelling import SpellingMistakesPlugin
from repro.plugins.structural import StructuralErrorsPlugin
from repro.sut.base import SystemUnderTest, split_sut

__all__ = ["Table1Result", "run_table1", "run_table1_for"]


@dataclass
class Table1Result:
    """Per-system typo-resilience profiles plus the rendered table."""

    profiles: dict[str, ResilienceProfile]
    table_text: str

    def detection_rate(self, system: str) -> float:
        """Overall detection rate of one system."""
        return self.profiles[system].detection_rate()


def _selected_directive_paths(
    sut: SystemUnderTest, per_section: int, seed: int
) -> set[tuple[str, tuple[int, ...]]]:
    """Pick up to ``per_section`` directives per section, as the paper does.

    Selection is expressed in terms of the token view's stable source paths
    so that the filter can be applied inside a later, independent transform.
    """
    engine = InjectionEngine(sut, SpellingMistakesPlugin(), seed=seed)
    config_set = engine.parse_initial_configuration()
    view_set = TokenView().transform(config_set)
    rng = random.Random(seed)

    per_group: dict[tuple[str, tuple[int, ...]], set[tuple[str, tuple[int, ...]]]] = {}
    for tree in view_set:
        for line in tree.root.children_of_kind("line"):
            if line.get("source_kind") != "directive":
                continue
            path = tuple(line.get("source_path", ()))
            group = (tree.name, path[:-1])  # the section (or file root) holding it
            per_group.setdefault(group, set()).add((tree.name, path))

    selected: set[tuple[str, tuple[int, ...]]] = set()
    for group_members in per_group.values():
        members = sorted(group_members)
        if len(members) > per_section:
            members = rng.sample(members, per_section)
        selected.update(members)
    return selected


def _token_filter_for(selected: set[tuple[str, tuple[int, ...]]]):
    def accept(token) -> bool:
        return (token.get("source_tree"), tuple(token.get("source_path", ()))) in selected

    return accept


def run_table1_for(
    sut: SystemUnderTest | Callable[[], SystemUnderTest],
    seed: int = 2008,
    directives_per_section: int = 10,
    typos_per_directive: int = 10,
    jobs: int = 1,
    executor: str | None = None,
) -> ResilienceProfile:
    """Run the three Table 1 error classes against one SUT and merge the profiles.

    ``sut`` may be an instance or a factory; ``jobs``/``executor`` fan the
    scenarios of each error class out across workers (note that the token
    filters are closures, so the thread strategy is the parallel option here).
    """
    sut, sut_factory = split_sut(sut)
    selected = _selected_directive_paths(sut, directives_per_section, seed)
    token_filter = _token_filter_for(selected)

    plugins = [
        StructuralErrorsPlugin(include=["omit-directive"]),
        SpellingMistakesPlugin(
            token_types=(TOKEN_DIRECTIVE_NAME,),
            mutations_per_token=typos_per_directive,
            token_filter=token_filter,
        ),
        SpellingMistakesPlugin(
            token_types=(TOKEN_DIRECTIVE_VALUE,),
            mutations_per_token=typos_per_directive,
            token_filter=token_filter,
        ),
    ]
    merged = ResilienceProfile(sut.name)
    for offset, plugin in enumerate(plugins):
        engine = InjectionEngine(
            sut, plugin, seed=seed + offset, sut_factory=sut_factory, jobs=jobs, executor=executor
        )
        merged.extend(engine.run().records)
    return merged


def run_table1(
    seed: int = 2008,
    directives_per_section: int = 10,
    typos_per_directive: int = 10,
    systems: dict[str, SystemUnderTest | Callable[[], SystemUnderTest]] | None = None,
    jobs: int = 1,
    executor: str | None = None,
) -> Table1Result:
    """Run the Table 1 experiment for MySQL, Postgres and Apache."""
    suts = systems if systems is not None else typo_benchmark_sut_factories()
    profiles = {
        name: run_table1_for(
            sut,
            seed=seed,
            directives_per_section=directives_per_section,
            typos_per_directive=typos_per_directive,
            jobs=jobs,
            executor=executor,
        )
        for name, sut in suts.items()
    }
    return Table1Result(profiles=profiles, table_text=typo_resilience_table(profiles))
