"""The resilience matrix -- M systems x N plugins, one table.

The ROADMAP's north star asks for "as many scenarios as you can imagine";
the matrix driver is where that ambition becomes visible: every registered
system crossed with every applicable error family, rendered as one table
whose cells are ``detected/injected (rate)``.  Adding a system or a plugin
to the registries grows the matrix automatically.

The driver reuses the campaign-suite machinery end to end, so a matrix run
is resumable, persistable and executor-invariant like any suite:
:func:`run_matrix` executes (optionally into a result store) and
:func:`matrix_from_store` re-renders a stored run byte-identically without
re-running a single injection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.profile import ResilienceProfile
from repro.core.report import resilience_matrix_table, store_matrix_profiles
from repro.core.spec import ExecutionSpec, ExperimentSpec, PluginSpec, StoreSpec, SystemSpec
from repro.core.store import ResultStore
from repro.core.suite import CampaignSuite, SuiteResult

__all__ = [
    "MatrixResult",
    "MATRIX_SYSTEMS",
    "MATRIX_PLUGINS",
    "matrix_spec",
    "run_matrix",
    "matrix_from_store",
]

#: Default system line-up: the paper's five plus the beyond-the-paper SUTs.
MATRIX_SYSTEMS = ("mysql", "postgres", "apache", "bind", "djbdns", "nginx", "sshd")

#: Default plugin line-up: every error family that applies across systems.
MATRIX_PLUGINS = ("spelling", "structural", "omission", "semantic-constraints")


@dataclass
class MatrixResult:
    """Per-(system, plugin) profiles plus the rendered matrix."""

    profiles: dict[str, dict[str, ResilienceProfile]]
    table_text: str

    def cell(self, system: str, plugin: str) -> ResilienceProfile:
        """Profile of one (system display name, plugin) cell."""
        return self.profiles[system][plugin]


def matrix_spec(
    systems: tuple[str, ...] | list[str] | None = None,
    plugins: tuple[str, ...] | list[str] | None = None,
    seed: int = 2008,
    jobs: int = 1,
    executor: str | None = None,
    block_size: int | None = None,
    mutations_per_token: int | None = 1,
    max_scenarios_per_class: int | None = None,
    store: str | None = None,
    resume: bool = False,
) -> ExperimentSpec:
    """The matrix experiment as a declarative spec.

    ``mutations_per_token`` defaults to 1 (the CLI's default) rather than
    the spelling plugin's exhaustive enumeration: an M x N matrix multiplies
    whatever each cell costs.
    """
    return ExperimentSpec(
        systems=tuple(SystemSpec(name) for name in (systems or MATRIX_SYSTEMS)),
        plugins=tuple(PluginSpec(name) for name in (plugins or MATRIX_PLUGINS)),
        execution=ExecutionSpec(
            seed=seed,
            jobs=jobs,
            executor=executor,
            block_size=block_size,
            mutations_per_token=mutations_per_token,
            max_scenarios_per_class=max_scenarios_per_class,
        ),
        store=StoreSpec(root=store, resume=resume) if store else None,
    )


def _result_from_suite(result: SuiteResult) -> MatrixResult:
    return MatrixResult(profiles=result.profiles_by_display(), table_text=result.matrix())


def run_matrix(
    systems: tuple[str, ...] | list[str] | None = None,
    plugins: tuple[str, ...] | list[str] | None = None,
    seed: int = 2008,
    jobs: int = 1,
    executor: str | None = None,
    block_size: int | None = None,
    mutations_per_token: int | None = 1,
    max_scenarios_per_class: int | None = None,
    store: ResultStore | None = None,
    resume: bool = False,
) -> MatrixResult:
    """Run the whole matrix (optionally persisting into ``store``).

    The run is an ordinary campaign suite: per-cell seeds derive from the
    one experiment seed, records stream into the store as they land, and an
    interrupted run resumes with ``resume=True``.
    """
    spec = matrix_spec(
        systems=systems,
        plugins=plugins,
        seed=seed,
        jobs=jobs,
        executor=executor,
        block_size=block_size,
        mutations_per_token=mutations_per_token,
        max_scenarios_per_class=max_scenarios_per_class,
        store=str(store.root) if store is not None else None,
        resume=resume,
    )
    suite = CampaignSuite.from_spec(spec)
    result = suite.run(store=store, resume=resume)
    return _result_from_suite(result)


def matrix_from_store(store: ResultStore) -> MatrixResult:
    """Rebuild a :class:`MatrixResult` from records on disk.

    Works for any suite-kind store (``conferr suite --store`` and
    ``conferr matrix --store`` write the same layout); the rendered table
    is byte-identical to the live run's.
    """
    store.require_kind("suite")
    profiles, plugin_order = store_matrix_profiles(store)
    # a campaign that injected nothing has no records on disk; fill in the
    # empty cells so .cell() behaves exactly like a live MatrixResult's
    for display, per_plugin in profiles.items():
        for plugin in plugin_order or ():
            per_plugin.setdefault(plugin, ResilienceProfile(display))
    table = resilience_matrix_table(profiles, plugin_order=plugin_order)
    return MatrixResult(profiles=profiles, table_text=table)
