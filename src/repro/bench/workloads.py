"""Workload builders shared by the experiment runners.

Provides the systems-under-test with the configurations each experiment
needs, and the "most of the available directives, with default values"
configurations used by the Section 5.5 comparison benchmark (Figure 3).

Each workload comes in two flavours: ``*_suts()`` returns live instances
(convenient for serial, single-engine use) and ``*_sut_factories()`` returns
picklable zero-argument factories -- the form the parallel campaign executor
needs, since every worker builds its own private SUT.
"""

from __future__ import annotations

from typing import Callable

from repro.registry import get_system
from repro.sut.base import SystemUnderTest
from repro.sut.mysql.options import MYSQLD_OPTIONS
from repro.sut.postgres.options import POSTGRES_OPTIONS

__all__ = [
    "typo_benchmark_suts",
    "typo_benchmark_sut_factories",
    "structural_benchmark_suts",
    "structural_benchmark_sut_factories",
    "dns_benchmark_suts",
    "dns_benchmark_sut_factories",
    "full_directive_mysql_config",
    "full_directive_postgres_config",
    "comparison_suts",
    "comparison_sut_factories",
    "simulated_sut_factories",
]

SUTFactory = Callable[[], SystemUnderTest]


def typo_benchmark_sut_factories() -> dict[str, SUTFactory]:
    """Factories for the three SUTs of the Table 1 experiment.

    MySQL uses the server-group-only option file so that every injected typo
    targets a directive the server actually parses at startup (see
    ``DEFAULT_MY_CNF_SERVER_ONLY``); the paper counts 14 directives for
    MySQL, 8 for Postgres and 98 for Apache.
    """
    return {
        "MySQL": get_system("mysql-server-only"),
        "Postgres": get_system("postgres"),
        "Apache": get_system("apache"),
    }


def typo_benchmark_suts() -> dict[str, object]:
    """The three SUTs of the Table 1 experiment, instantiated."""
    return {name: factory() for name, factory in typo_benchmark_sut_factories().items()}


def structural_benchmark_sut_factories() -> dict[str, SUTFactory]:
    """Factories for the Table 2 SUTs (full default configurations)."""
    return {
        "MySQL": get_system("mysql"),
        "Postgres": get_system("postgres"),
        "Apache": get_system("apache"),
    }


def structural_benchmark_suts() -> dict[str, object]:
    """The three SUTs of the Table 2 experiment (full default configurations)."""
    return {name: factory() for name, factory in structural_benchmark_sut_factories().items()}


def dns_benchmark_sut_factories() -> dict[str, SUTFactory]:
    """Factories for the two SUTs of the Table 3 experiment."""
    return {"BIND": get_system("bind"), "djbdns": get_system("djbdns")}


def dns_benchmark_suts() -> dict[str, object]:
    """The two SUTs of the Table 3 experiment."""
    return {name: factory() for name, factory in dns_benchmark_sut_factories().items()}


def simulated_sut_factories() -> dict[str, SUTFactory]:
    """Factories for all five simulated systems the paper studies."""
    return {name: get_system(name) for name in ("mysql", "postgres", "apache", "bind", "djbdns")}


def full_directive_mysql_config() -> str:
    """A ``my.cnf`` containing most available directives with default values.

    Following Section 5.5, boolean/flag options and options without a default
    are skipped (typos in boolean values are known to be detected by both
    systems and would not differentiate them).
    """
    lines = ["[mysqld]"]
    for spec in MYSQLD_OPTIONS:
        if spec.flag or spec.kind == "bool" or spec.default in (None, ""):
            continue
        lines.append(f"{spec.name} = {spec.default}")
    return "\n".join(lines) + "\n"


def full_directive_postgres_config() -> str:
    """A ``postgresql.conf`` containing most available directives with defaults."""
    lines = ["# full-directive configuration for the comparison benchmark"]
    for spec in POSTGRES_OPTIONS:
        if spec.kind == "bool" or spec.default in (None, ""):
            continue
        if spec.kind in ("string", "path", "enum") and not spec.default.replace(".", "").isalnum():
            value = f"'{spec.default}'"
        elif spec.kind in ("string", "path"):
            value = f"'{spec.default}'"
        else:
            value = spec.default
        lines.append(f"{spec.name} = {value}")
    return "\n".join(lines) + "\n"


def comparison_sut_factories() -> dict[str, SUTFactory]:
    """Factories for the Figure 3 comparison SUTs (full-directive files)."""
    return {
        "MySQL": get_system("mysql-full-directives"),
        "Postgresql": get_system("postgres-full-directives"),
    }


def comparison_suts() -> dict[str, object]:
    """MySQL and Postgres configured with the full-directive files (Figure 3)."""
    return {name: factory() for name, factory in comparison_sut_factories().items()}
