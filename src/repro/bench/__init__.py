"""Experiment runners that regenerate the paper's tables and figures.

Each module corresponds to one evaluation artefact:

* :mod:`repro.bench.table1`  -- resilience to typos (Table 1),
* :mod:`repro.bench.table2`  -- resilience to structural variations (Table 2),
* :mod:`repro.bench.table3`  -- resilience to DNS semantic errors (Table 3),
* :mod:`repro.bench.figure3` -- the MySQL vs Postgres value-typo comparison (Figure 3),
* :mod:`repro.bench.matrix`  -- the M-systems x N-plugins resilience matrix
  (beyond the paper: every registered system crossed with every error family),
* :mod:`repro.bench.timing`  -- per-injection wall-clock cost (Section 5.2's timing remarks).

The ``benchmarks/`` pytest-benchmark suite and the ``conferr`` CLI both call
into these runners; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.bench.table1 import Table1Result, run_table1, table1_from_store
from repro.bench.table2 import Table2Result, run_table2, table2_from_store
from repro.bench.table3 import Table3Result, run_table3, table3_from_store
from repro.bench.figure3 import Figure3Result, figure3_from_store, run_figure3
from repro.bench.matrix import MatrixResult, matrix_from_store, matrix_spec, run_matrix
from repro.bench.timing import ThroughputResult, campaign_throughput, time_single_injection

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_figure3",
    "run_matrix",
    "matrix_spec",
    "table1_from_store",
    "table2_from_store",
    "table3_from_store",
    "figure3_from_store",
    "matrix_from_store",
    "time_single_injection",
    "campaign_throughput",
    "ThroughputResult",
    "Table1Result",
    "Table2Result",
    "Table3Result",
    "Figure3Result",
    "MatrixResult",
]
