"""Figure 3 -- comparing the typo resilience of MySQL and Postgres.

The Section 5.5 benchmark views configuration as a transformation of an
initial file and measures how many of the errors introduced along the way
the system detects.  Concretely (and as in the paper):

* the starting configuration contains most of the available directives with
  their default values; directives with boolean values or no default are
  excluded,
* only typos in directive *values* are injected (name typos are detected by
  both systems and would not differentiate them),
* each directive receives ``experiments_per_directive`` independent typo
  experiments (the paper uses 20),
* the per-directive detection rate is binned into poor / fair / good /
  excellent, and Figure 3 reports the share of directives in each bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import InjectionEngine
from repro.core.profile import ResilienceProfile
from repro.core.report import (
    detection_distribution,
    per_directive_detection_rates,
    render_distribution_chart,
)
from repro.core.store import ResultStore
from repro.core.views.token_view import TOKEN_DIRECTIVE_VALUE
from repro.bench.workloads import comparison_sut_factories
from repro.plugins.spelling import SpellingMistakesPlugin
from repro.sut.base import SystemUnderTest, split_sut

__all__ = ["Figure3Result", "run_figure3", "run_figure3_for", "figure3_from_store"]

#: Store campaign key for the one plugin the comparison runs per system.
FIGURE3_CAMPAIGN = "value-typos"


@dataclass
class Figure3Result:
    """Per-system directive detection rates, bin distributions and the chart."""

    per_directive_rates: dict[str, dict[str, float]]
    distributions: dict[str, dict[str, float]]
    profiles: dict[str, ResilienceProfile]
    chart_text: str

    def share(self, system: str, bin_label: str) -> float:
        """Share of a system's directives in one detection bin."""
        return self.distributions[system].get(bin_label, 0.0)


def run_figure3_for(
    sut: SystemUnderTest | Callable[[], SystemUnderTest],
    seed: int = 2008,
    experiments_per_directive: int = 20,
    jobs: int = 1,
    executor: str | None = None,
    store: ResultStore | None = None,
    system_key: str | None = None,
) -> tuple[dict[str, float], ResilienceProfile]:
    """Run the comparison procedure for one system.

    Returns the per-directive detection rates and the full profile.
    """
    sut, sut_factory = split_sut(sut)
    plugin = SpellingMistakesPlugin(
        token_types=(TOKEN_DIRECTIVE_VALUE,),
        mutations_per_token=experiments_per_directive,
    )
    observer = None
    if store is not None:
        key = system_key or sut.name
        observer = lambda record, key=key: store.append(key, FIGURE3_CAMPAIGN, record)
    engine = InjectionEngine(
        sut,
        plugin,
        seed=seed,
        observer=observer,
        sut_factory=sut_factory,
        jobs=jobs,
        executor=executor,
    )
    profile = engine.run()
    return per_directive_detection_rates(profile), profile


def run_figure3(
    seed: int = 2008,
    experiments_per_directive: int = 20,
    systems: dict[str, SystemUnderTest | Callable[[], SystemUnderTest]] | None = None,
    jobs: int = 1,
    executor: str | None = None,
    store: ResultStore | None = None,
) -> Figure3Result:
    """Run the Figure 3 comparison for MySQL and Postgres.

    With a ``store`` the per-system records are persisted under the
    :data:`FIGURE3_CAMPAIGN` key; :func:`figure3_from_store` re-renders the
    distributions from those records.
    """
    suts = systems if systems is not None else comparison_sut_factories()
    if store is not None:
        store.ensure_fresh().write_manifest(
            {
                "kind": "figure3",
                "seed": seed,
                "systems": {name: name for name in suts},
                "plugins": [{"name": FIGURE3_CAMPAIGN, "params": {}}],
                "layout": None,
                "params": {"experiments_per_directive": experiments_per_directive},
            }
        )
    per_directive_rates: dict[str, dict[str, float]] = {}
    distributions: dict[str, dict[str, float]] = {}
    profiles: dict[str, ResilienceProfile] = {}
    for name, sut in suts.items():
        rates, profile = run_figure3_for(
            sut,
            seed=seed,
            experiments_per_directive=experiments_per_directive,
            jobs=jobs,
            executor=executor,
            store=store,
            system_key=name,
        )
        per_directive_rates[name] = rates
        distributions[name] = detection_distribution(rates)
        profiles[name] = profile
    return Figure3Result(
        per_directive_rates=per_directive_rates,
        distributions=distributions,
        profiles=profiles,
        chart_text=render_distribution_chart(distributions),
    )


def figure3_from_store(store: ResultStore) -> Figure3Result:
    """Rebuild a :class:`Figure3Result` from records on disk.

    The per-directive detection rates are recomputed from the stored
    records' metadata, exactly as the live run computes them.
    """
    store.require_kind("figure3", "suite")
    per_directive_rates: dict[str, dict[str, float]] = {}
    distributions: dict[str, dict[str, float]] = {}
    profiles = store.merged_profiles()
    for name, profile in profiles.items():
        rates = per_directive_detection_rates(profile)
        per_directive_rates[name] = rates
        distributions[name] = detection_distribution(rates)
    return Figure3Result(
        per_directive_rates=per_directive_rates,
        distributions=distributions,
        profiles=profiles,
        chart_text=render_distribution_chart(distributions),
    )
