"""Figure 3 -- comparing the typo resilience of MySQL and Postgres.

The Section 5.5 benchmark views configuration as a transformation of an
initial file and measures how many of the errors introduced along the way
the system detects.  Concretely (and as in the paper):

* the starting configuration contains most of the available directives with
  their default values; directives with boolean values or no default are
  excluded,
* only typos in directive *values* are injected (name typos are detected by
  both systems and would not differentiate them),
* each directive receives ``experiments_per_directive`` independent typo
  experiments (the paper uses 20),
* the per-directive detection rate is binned into poor / fair / good /
  excellent, and Figure 3 reports the share of directives in each bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.engine import InjectionEngine
from repro.core.profile import ResilienceProfile
from repro.core.report import (
    detection_distribution,
    per_directive_detection_rates,
    render_distribution_chart,
)
from repro.core.spec import ExecutionSpec, ExperimentSpec, PluginSpec, SystemSpec
from repro.core.store import ResultStore
from repro.core.views.token_view import TOKEN_DIRECTIVE_VALUE
from repro.bench.persist import write_bench_manifest
from repro.sut.base import SystemUnderTest, split_sut

__all__ = [
    "Figure3Result",
    "run_figure3",
    "run_figure3_for",
    "figure3_from_store",
    "figure3_spec",
]

#: Store campaign key for the one plugin the comparison runs per system.
FIGURE3_CAMPAIGN = "value-typos"


def figure3_spec(
    seed: int = 2008,
    experiments_per_directive: int = 20,
    jobs: int = 1,
    executor: str | None = None,
    block_size: int | None = None,
) -> ExperimentSpec:
    """The Figure 3 comparison as a declarative spec.

    Both systems run the full-directive workload variants (most available
    directives at their defaults, Section 5.5) with value typos only.
    """
    return ExperimentSpec(
        systems=(
            SystemSpec("mysql-full-directives", label="MySQL"),
            SystemSpec("postgres-full-directives", label="Postgresql"),
        ),
        plugins=(
            PluginSpec(
                "spelling",
                label=FIGURE3_CAMPAIGN,
                params={
                    "token_types": [TOKEN_DIRECTIVE_VALUE],
                    "mutations_per_token": experiments_per_directive,
                },
            ),
        ),
        execution=ExecutionSpec(seed=seed, jobs=jobs, executor=executor, block_size=block_size),
    )


@dataclass
class Figure3Result:
    """Per-system directive detection rates, bin distributions and the chart."""

    per_directive_rates: dict[str, dict[str, float]]
    distributions: dict[str, dict[str, float]]
    profiles: dict[str, ResilienceProfile]
    chart_text: str

    def share(self, system: str, bin_label: str) -> float:
        """Share of a system's directives in one detection bin."""
        return self.distributions[system].get(bin_label, 0.0)


def run_figure3_for(
    sut: SystemUnderTest | Callable[[], SystemUnderTest],
    seed: int = 2008,
    experiments_per_directive: int = 20,
    jobs: int = 1,
    executor: str | None = None,
    block_size: int | None = None,
    store: ResultStore | None = None,
    system_key: str | None = None,
) -> tuple[dict[str, float], ResilienceProfile]:
    """Run the comparison procedure for one system.

    Returns the per-directive detection rates and the full profile.
    """
    sut, sut_factory = split_sut(sut)
    (plugin,) = figure3_spec(
        seed=seed, experiments_per_directive=experiments_per_directive
    ).build_plugins()
    observer = None
    if store is not None:
        key = system_key or sut.name
        observer = lambda record, key=key: store.append(key, FIGURE3_CAMPAIGN, record)
    engine = InjectionEngine(
        sut,
        plugin,
        seed=seed,
        observer=observer,
        sut_factory=sut_factory,
        jobs=jobs,
        executor=executor,
        block_size=block_size,
    )
    profile = engine.run()
    return per_directive_detection_rates(profile), profile


def run_figure3(
    seed: int = 2008,
    experiments_per_directive: int = 20,
    systems: dict[str, SystemUnderTest | Callable[[], SystemUnderTest]] | None = None,
    jobs: int = 1,
    executor: str | None = None,
    block_size: int | None = None,
    store: ResultStore | None = None,
) -> Figure3Result:
    """Run the Figure 3 comparison for MySQL and Postgres.

    The run is wired from :func:`figure3_spec`.  With a ``store`` the
    per-system records are persisted under the :data:`FIGURE3_CAMPAIGN` key
    (the manifest embeds the serialized spec); :func:`figure3_from_store`
    re-renders the distributions from those records.
    """
    spec = figure3_spec(
        seed=seed,
        experiments_per_directive=experiments_per_directive,
        jobs=jobs,
        executor=executor,
        block_size=block_size,
    )
    suts = systems if systems is not None else spec.build_systems()
    if store is not None:
        write_bench_manifest(
            store,
            kind="figure3",
            seed=seed,
            suts=suts,
            plugins=[{"name": FIGURE3_CAMPAIGN, "params": {}}],
            params={"experiments_per_directive": experiments_per_directive},
            spec=spec if systems is None else None,
        )
    per_directive_rates: dict[str, dict[str, float]] = {}
    distributions: dict[str, dict[str, float]] = {}
    profiles: dict[str, ResilienceProfile] = {}
    for name, sut in suts.items():
        rates, profile = run_figure3_for(
            sut,
            seed=seed,
            experiments_per_directive=experiments_per_directive,
            jobs=jobs,
            executor=executor,
            block_size=block_size,
            store=store,
            system_key=name,
        )
        per_directive_rates[name] = rates
        distributions[name] = detection_distribution(rates)
        profiles[name] = profile
    return Figure3Result(
        per_directive_rates=per_directive_rates,
        distributions=distributions,
        profiles=profiles,
        chart_text=render_distribution_chart(distributions),
    )


def figure3_from_store(store: ResultStore) -> Figure3Result:
    """Rebuild a :class:`Figure3Result` from records on disk.

    The per-directive detection rates are recomputed from the stored
    records' metadata, exactly as the live run computes them.
    """
    store.require_kind("figure3", "suite")
    per_directive_rates: dict[str, dict[str, float]] = {}
    distributions: dict[str, dict[str, float]] = {}
    profiles = store.merged_profiles()
    for name, profile in profiles.items():
        rates = per_directive_detection_rates(profile)
        per_directive_rates[name] = rates
        distributions[name] = detection_distribution(rates)
    return Figure3Result(
        per_directive_rates=per_directive_rates,
        distributions=distributions,
        profiles=profiles,
        chart_text=render_distribution_chart(distributions),
    )
