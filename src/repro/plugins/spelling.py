"""Spelling-mistakes plugin: realistic one-letter typos.

Implements the five typo submodels of Sections 2.1 and 4.1, adapted from the
triphone classification of van Berkel & De Smedt:

* **omission** -- one character is missing,
* **insertion** -- a spurious character (produced by the intended key or one
  of its neighbours) slips in,
* **substitution** -- a character is replaced by the output of a nearby key
  pressed with the same modifiers,
* **case alteration** -- the case of adjacent letters is swapped because the
  Shift key was pressed or released at the wrong moment,
* **transposition** -- two adjacent letters are swapped.

Each submodel extends the abstract modify template; the plugin composes them
over the token view and can either enumerate all possible typos or select a
bounded random subset per target token (the paper's case studies pick a
handful of random typos per directive).
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Callable, Iterable, Mapping, Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import AddressIndex, FaultScenario, SetFieldOperation
from repro.core.templates.primitives import ModifyTemplate
from repro.core.views.token_view import (
    TOKEN_DIRECTIVE_NAME,
    TOKEN_DIRECTIVE_VALUE,
    TOKEN_SECTION_ARG,
    TOKEN_SECTION_NAME,
    TokenView,
)
from repro.errors import PluginError, SpecError
from repro.keyboard.typist import Typist
from repro.plugins.base import (
    ErrorGeneratorPlugin,
    positive_int_param,
    register_plugin,
    string_list_param,
)

__all__ = [
    "TypoModel",
    "OmissionModel",
    "InsertionModel",
    "SubstitutionModel",
    "CaseAlterationModel",
    "TranspositionModel",
    "TypoTemplate",
    "SpellingMistakesPlugin",
    "default_models",
]


# ----------------------------------------------------------------------- models
class TypoModel(ABC):
    """One category of single-keystroke error."""

    #: Identifier used in scenario categories (``typo-<name>``).
    name: str = "typo"

    @abstractmethod
    def mutations(self, word: str) -> list[str]:
        """All distinct faulty spellings of ``word`` under this model."""

    def category(self) -> str:
        """Scenario category for this model."""
        return f"typo-{self.name}"


class OmissionModel(TypoModel):
    """Drop one character (hurried typing misses a keystroke)."""

    name = "omission"

    def mutations(self, word: str) -> list[str]:
        if len(word) < 2:
            return []  # dropping the only character deletes the word, not a typo
        seen: dict[str, None] = {}
        for index in range(len(word)):
            seen.setdefault(word[:index] + word[index + 1:], None)
        return [variant for variant in seen if variant != word]


class InsertionModel(TypoModel):
    """Insert a spurious character next to an intended keystroke."""

    name = "insertion"

    def __init__(self, typist: Typist | None = None):
        self.typist = typist or Typist()

    def mutations(self, word: str) -> list[str]:
        if not word:
            return []
        seen: dict[str, None] = {}
        # A slip can land *before* the first keystroke too: the spurious
        # character comes from the first intended key or its neighbours
        # (Section 4.1's insertion model covers both sides of a keypress).
        for candidate in self.typist.insertion_candidates(word[0]):
            seen.setdefault(candidate + word, None)
        for index, char in enumerate(word):
            for candidate in self.typist.insertion_candidates(char):
                seen.setdefault(word[: index + 1] + candidate + word[index + 1:], None)
        return [variant for variant in seen if variant != word]


class SubstitutionModel(TypoModel):
    """Replace a character with the output of a neighbouring key."""

    name = "substitution"

    def __init__(self, typist: Typist | None = None):
        self.typist = typist or Typist()

    def mutations(self, word: str) -> list[str]:
        seen: dict[str, None] = {}
        for index, char in enumerate(word):
            for candidate in self.typist.substitution_candidates(char):
                seen.setdefault(word[:index] + candidate + word[index + 1:], None)
        return [variant for variant in seen if variant != word]


class CaseAlterationModel(TypoModel):
    """Swap the case of adjacent letters (Shift-key miscoordination)."""

    name = "case-alteration"

    def mutations(self, word: str) -> list[str]:
        seen: dict[str, None] = {}
        for index in range(len(word) - 1):
            first, second = word[index], word[index + 1]
            if not (first.isalpha() and second.isalpha()):
                continue
            if first.isupper() == second.isupper():
                continue
            swapped = word[:index] + first.swapcase() + second.swapcase() + word[index + 2:]
            seen.setdefault(swapped, None)
        # A lone capital at a word boundary can also lose or gain its Shift.
        for index, char in enumerate(word):
            if char.isalpha() and char.isupper():
                seen.setdefault(word[:index] + char.lower() + word[index + 1:], None)
        return [variant for variant in seen if variant != word]


class TranspositionModel(TypoModel):
    """Swap two adjacent characters within a word."""

    name = "transposition"

    def mutations(self, word: str) -> list[str]:
        seen: dict[str, None] = {}
        for index in range(len(word) - 1):
            if word[index] == word[index + 1]:
                continue
            swapped = word[:index] + word[index + 1] + word[index] + word[index + 2:]
            seen.setdefault(swapped, None)
        return [variant for variant in seen if variant != word]


def default_models(typist: Typist | None = None) -> list[TypoModel]:
    """The five paper submodels, sharing one keyboard model."""
    typist = typist or Typist()
    return [
        OmissionModel(),
        InsertionModel(typist),
        SubstitutionModel(typist),
        CaseAlterationModel(),
        TranspositionModel(),
    ]


#: Model constructors by registry name, used by spec-driven construction.
_MODEL_BUILDERS: dict[str, Callable[[Typist], TypoModel]] = {
    OmissionModel.name: lambda typist: OmissionModel(),
    InsertionModel.name: lambda typist: InsertionModel(typist),
    SubstitutionModel.name: lambda typist: SubstitutionModel(typist),
    CaseAlterationModel.name: lambda typist: CaseAlterationModel(),
    TranspositionModel.name: lambda typist: TranspositionModel(),
}


# --------------------------------------------------------------------- template
class TypoTemplate(ModifyTemplate):
    """Adapter exposing a :class:`TypoModel` as an abstract-modify template."""

    field_name = "value"

    def __init__(self, target: str, model: TypoModel):
        super().__init__(target, category=model.category())
        self.model = model

    def mutations_for(self, node: ConfigNode, rng: random.Random) -> Iterable[tuple[str, str]]:
        word = self.current_value(node) or ""
        return [(self.model.name, variant) for variant in self.model.mutations(word)]


# ----------------------------------------------------------------------- plugin
@register_plugin
class SpellingMistakesPlugin(ErrorGeneratorPlugin):
    """Generate one-letter typos in configuration tokens.

    Parameters
    ----------
    token_types:
        Which token classes to target (directive names, directive values,
        section names...).  Restricting by token type is how the paper limits
        injection "to a specific part of the configuration" (Section 4.1).
    models:
        The typo submodels to use (default: all five).
    mutations_per_token:
        When set, at most this many randomly chosen typos are produced per
        target token; when None, every possible typo becomes a scenario.
    token_filter:
        Optional predicate on token nodes for finer targeting (e.g. only
        directives of a given section).
    """

    name = "spelling"
    param_names = ("token_types", "models", "mutations_per_token", "layout")

    def __init__(
        self,
        token_types: Sequence[str] = (TOKEN_DIRECTIVE_NAME, TOKEN_DIRECTIVE_VALUE),
        models: Sequence[TypoModel] | None = None,
        mutations_per_token: int | None = None,
        token_filter=None,
        layout_name: str | None = None,
    ):
        if layout_name is not None:
            from repro.keyboard.layouts import get_layout

            typist = Typist(get_layout(layout_name))
        else:
            typist = Typist()
        self.layout_name = layout_name
        self.token_types = tuple(token_types)
        self.models = list(models) if models is not None else default_models(typist)
        if not self.models:
            raise PluginError("SpellingMistakesPlugin requires at least one typo model")
        self.mutations_per_token = mutations_per_token
        self.token_filter = token_filter
        self._view = TokenView()

    @property
    def view(self) -> TokenView:
        return self._view

    def manifest_params(self) -> dict:
        return {
            "token_types": list(self.token_types),
            "models": [model.name for model in self.models],
            "mutations_per_token": self.mutations_per_token,
            "layout": self.layout_name,
        }

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "SpellingMistakesPlugin":
        cls.check_param_names(params)
        known_tokens = (
            TOKEN_DIRECTIVE_NAME,
            TOKEN_DIRECTIVE_VALUE,
            TOKEN_SECTION_NAME,
            TOKEN_SECTION_ARG,
        )
        token_types = (TOKEN_DIRECTIVE_NAME, TOKEN_DIRECTIVE_VALUE)
        if params.get("token_types") is not None:
            token_types = tuple(
                string_list_param("token_types", params["token_types"], allowed=known_tokens)
            )
        from repro.keyboard.layouts import available_layouts, get_layout

        layout = params.get("layout")
        if layout is not None:
            if not isinstance(layout, str):
                raise SpecError(f"layout: expected a layout name, got {layout!r}")
            try:
                get_layout(layout)
            except KeyError:
                raise SpecError(
                    f"layout: unknown layout {layout!r}; "
                    f"available: {', '.join(available_layouts())}"
                ) from None
        models = None
        if params.get("models") is not None:
            names = string_list_param("models", params["models"], allowed=tuple(_MODEL_BUILDERS))
            if not names:
                raise SpecError("models: must name at least one typo model")
            typist = Typist() if layout is None else Typist(get_layout(layout))
            models = [_MODEL_BUILDERS[name](typist) for name in names]
        return cls(
            token_types=token_types,
            models=models,
            mutations_per_token=positive_int_param(
                "mutations_per_token", params.get("mutations_per_token")
            ),
            layout_name=layout,
        )

    # ------------------------------------------------------------------ faults
    def target_tokens(self, view_set: ConfigSet) -> list[ConfigNode]:
        """Token nodes eligible for typo injection."""
        tokens: list[ConfigNode] = []
        for tree in view_set:
            for node in tree.walk():
                if node.kind != "token":
                    continue
                if node.get("token_type") not in self.token_types:
                    continue
                if not (node.value or "").strip():
                    continue
                if self.token_filter is not None and not self.token_filter(node):
                    continue
                tokens.append(node)
        return tokens

    def mutations_for_token(self, token: ConfigNode) -> list[tuple[TypoModel, str]]:
        """Every (model, faulty spelling) pair applicable to ``token``."""
        word = token.value or ""
        result: list[tuple[TypoModel, str]] = []
        for model in self.models:
            for variant in model.mutations(word):
                result.append((model, variant))
        return result

    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        ordinal = 0
        addresses = AddressIndex(view_set)
        for token in self.target_tokens(view_set):
            candidates = self.mutations_for_token(token)
            if not candidates:
                continue
            if self.mutations_per_token is not None and len(candidates) > self.mutations_per_token:
                candidates = rng.sample(candidates, self.mutations_per_token)
            address = addresses.address_of(token)
            original = token.value or ""
            for model, variant in candidates:
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"typo-{ordinal}-{model.name}",
                        description=(
                            f"{model.name} typo in {token.get('token_type')} "
                            f"{original!r} -> {variant!r}"
                        ),
                        category=model.category(),
                        operations=(SetFieldOperation(address, "value", variant),),
                        metadata={
                            "token_type": token.get("token_type"),
                            "source_tree": token.get("source_tree"),
                            "source_path": tuple(token.get("source_path", ())),
                            "directive": token.get("owner_name"),
                            "field": token.get("field"),
                            "original": original,
                            "mutated": variant,
                            "model": model.name,
                        },
                    )
                )
                ordinal += 1
        return scenarios
