"""Plugin interface and registry."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, Mapping, Sequence

from repro.core.infoset import ConfigSet
from repro.core.templates.base import FaultScenario
from repro.core.views.base import View
from repro.errors import SpecError

__all__ = [
    "ErrorGeneratorPlugin",
    "register_plugin",
    "get_plugin",
    "available_plugins",
    "registered_plugins",
    "positive_int_param",
    "string_list_param",
]


def positive_int_param(key: str, value: Any) -> int | None:
    """Validate an optional positive-integer spec parameter.

    Raises :class:`~repro.errors.SpecError` whose message starts with the
    parameter name, so callers can prefix it with the spec path.
    """
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{key}: expected a positive integer, got {value!r}")
    if value < 1:
        raise SpecError(f"{key}: must be a positive integer, got {value}")
    return value


def string_list_param(key: str, value: Any, allowed: Sequence[str] | None = None) -> list[str]:
    """Validate a list-of-strings spec parameter, optionally against ``allowed``.

    Duplicates are rejected: plugins iterate these lists verbatim, so a
    repeated entry would silently double the generated scenarios.
    """
    if not isinstance(value, (list, tuple)):
        raise SpecError(f"{key}: expected a list of strings, got {value!r}")
    names = list(value)
    seen: set[str] = set()
    for name in names:
        if not isinstance(name, str):
            raise SpecError(f"{key}: expected a list of strings, got element {name!r}")
        if allowed is not None and name not in allowed:
            raise SpecError(
                f"{key}: unknown value {name!r}; available: {', '.join(allowed)}"
            )
        if name in seen:
            raise SpecError(f"{key}: duplicate value {name!r}; list each entry once")
        seen.add(name)
    return names

_REGISTRY: dict[str, type["ErrorGeneratorPlugin"]] = {}


class ErrorGeneratorPlugin(ABC):
    """An error model packaged for the injection engine.

    A plugin declares the :class:`~repro.core.views.base.View` it operates on
    and generates :class:`FaultScenario` objects from the *view* of the
    configuration set.  The engine owns the rest of the pipeline: applying a
    scenario to a fresh view, mapping the mutated view back to the native
    trees and serialising them.
    """

    #: Registry name of the plugin.
    name: str = "plugin"

    #: Spec-level parameter names :meth:`from_params` accepts.  Declarative
    #: experiment specs use this both to validate plugin parameters and to
    #: decide which execution-level defaults (``mutations_per_token``,
    #: ``max_scenarios_per_class``, ``layout``) a plugin can receive.
    param_names: tuple[str, ...] = ()

    @property
    @abstractmethod
    def view(self) -> View:
        """View this plugin's scenarios are defined on."""

    @abstractmethod
    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        """Produce the fault scenarios for one campaign run."""

    def manifest_params(self) -> dict:
        """JSON-native description of this plugin's configuration.

        Persisted in a result-store manifest so a resumed suite can verify
        it is continuing the same experiment.  Values must survive a JSON
        round-trip unchanged (lists, not tuples), and feeding them back into
        :meth:`from_params` must reconstruct an equivalent plugin --
        ``manifest_params`` and ``from_params`` are inverses.
        """
        return {}

    @classmethod
    def from_params(cls, params: Mapping[str, Any]) -> "ErrorGeneratorPlugin":
        """Construct the plugin from a JSON-native parameter dict.

        The inverse of :meth:`manifest_params`: construction must not depend
        on any CLI machinery, only on plain data.  Implementations raise
        :class:`~repro.errors.SpecError` with messages starting with the
        offending parameter name, so spec validation can report the exact
        path (``plugins[1].params.layout: ...``).

        The default implementation checks the keys against
        :attr:`param_names` and passes them to the constructor verbatim.
        """
        cls.check_param_names(params)
        return cls(**dict(params))

    @classmethod
    def check_param_names(cls, params: Mapping[str, Any]) -> None:
        """Reject parameter names outside :attr:`param_names`.

        The rejection carries a did-you-mean suggestion computed by the
        spelling plugin's own typo models -- most parameter mistakes are
        one psychomotor slip away from the name that was meant.
        """
        for key in params:
            if key not in cls.param_names:
                from repro.analysis.suggest import suggestion_suffix

                raise SpecError(
                    f"{key}: unknown parameter for plugin {cls.name!r}; "
                    f"known: {', '.join(cls.param_names) or '(none)'}"
                    f"{suggestion_suffix(key, cls.param_names)}"
                )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def register_plugin(plugin_class: type[ErrorGeneratorPlugin]) -> type[ErrorGeneratorPlugin]:
    """Class decorator registering a plugin under its ``name``."""
    _REGISTRY[plugin_class.name] = plugin_class
    return plugin_class


def get_plugin(name: str) -> type[ErrorGeneratorPlugin]:
    """Return the plugin class registered under ``name``."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown plugin {name!r}; available: {available_plugins()}")
    return _REGISTRY[name]


def available_plugins() -> list[str]:
    """Names of all registered plugins, sorted."""
    return sorted(_REGISTRY)


def registered_plugins() -> dict[str, type[ErrorGeneratorPlugin]]:
    """Snapshot of the registry as ``{name: class}``.

    The self-lint's ``harness/param-drift`` rule iterates this to check
    every plugin's ``param_names``/``from_params``/``manifest_params``
    triangle; a copy is returned so callers cannot mutate the registry.
    """
    return dict(_REGISTRY)
