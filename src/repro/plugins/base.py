"""Plugin interface and registry."""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.core.infoset import ConfigSet
from repro.core.templates.base import FaultScenario
from repro.core.views.base import View

__all__ = ["ErrorGeneratorPlugin", "register_plugin", "get_plugin", "available_plugins"]

_REGISTRY: dict[str, type["ErrorGeneratorPlugin"]] = {}


class ErrorGeneratorPlugin(ABC):
    """An error model packaged for the injection engine.

    A plugin declares the :class:`~repro.core.views.base.View` it operates on
    and generates :class:`FaultScenario` objects from the *view* of the
    configuration set.  The engine owns the rest of the pipeline: applying a
    scenario to a fresh view, mapping the mutated view back to the native
    trees and serialising them.
    """

    #: Registry name of the plugin.
    name: str = "plugin"

    @property
    @abstractmethod
    def view(self) -> View:
        """View this plugin's scenarios are defined on."""

    @abstractmethod
    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        """Produce the fault scenarios for one campaign run."""

    def manifest_params(self) -> dict:
        """JSON-native description of this plugin's configuration.

        Persisted in a result-store manifest so a resumed suite can verify
        it is continuing the same experiment.  Values must survive a JSON
        round-trip unchanged (lists, not tuples).
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r})"


def register_plugin(plugin_class: type[ErrorGeneratorPlugin]) -> type[ErrorGeneratorPlugin]:
    """Class decorator registering a plugin under its ``name``."""
    _REGISTRY[plugin_class.name] = plugin_class
    return plugin_class


def get_plugin(name: str) -> type[ErrorGeneratorPlugin]:
    """Return the plugin class registered under ``name``."""
    if name not in _REGISTRY:
        raise KeyError(f"unknown plugin {name!r}; available: {available_plugins()}")
    return _REGISTRY[name]


def available_plugins() -> list[str]:
    """Names of all registered plugins, sorted."""
    return sorted(_REGISTRY)
