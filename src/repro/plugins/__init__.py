"""Error generator plugins.

A plugin bundles (paper Section 4): the view it needs, the error templates it
instantiates, and the policy for selecting which concrete faults to inject.
Three plugins reproduce the paper's models:

* :class:`~repro.plugins.spelling.SpellingMistakesPlugin` -- one-letter typos
  (omission, insertion, substitution, case alteration, transposition),
* :class:`~repro.plugins.structural.StructuralErrorsPlugin` -- omission,
  duplication and misplacement of directives/sections, plus the semantically
  neutral structural *variations* of Section 5.3,
* :class:`~repro.plugins.semantic_dns.DnsSemanticErrorsPlugin` -- RFC-1912
  style record-level errors for DNS servers,
* :class:`~repro.plugins.omission.OmissionDuplicationPlugin` -- whole-directive
  and whole-section omissions plus conflicting copy-paste duplicates, the
  error family that separates refuse/first-wins/last-wins duplicate policies.

An extension plugin, :class:`~repro.plugins.semantic_db.ConstraintViolationPlugin`,
covers the paper's other semantic class (inconsistent cross-directive
configurations).
"""

from repro.plugins.base import ErrorGeneratorPlugin, available_plugins, get_plugin, register_plugin
from repro.plugins.spelling import SpellingMistakesPlugin
from repro.plugins.structural import StructuralErrorsPlugin, StructuralVariationsPlugin
from repro.plugins.omission import OmissionDuplicationPlugin
from repro.plugins.semantic_dns import DnsSemanticErrorsPlugin
from repro.plugins.semantic_db import (
    MYSQL_CONSTRAINTS,
    POSTGRES_CONSTRAINTS,
    ConstraintSpec,
    ConstraintViolationPlugin,
    ScaledRelatedValue,
    default_constraints,
)

__all__ = [
    "ErrorGeneratorPlugin",
    "available_plugins",
    "get_plugin",
    "register_plugin",
    "SpellingMistakesPlugin",
    "StructuralErrorsPlugin",
    "StructuralVariationsPlugin",
    "OmissionDuplicationPlugin",
    "DnsSemanticErrorsPlugin",
    "ConstraintSpec",
    "ConstraintViolationPlugin",
    "ScaledRelatedValue",
    "MYSQL_CONSTRAINTS",
    "POSTGRES_CONSTRAINTS",
    "default_constraints",
]
