"""Structural-errors plugin and structural-variations generator.

Two plugins live in this module:

:class:`StructuralErrorsPlugin`
    Injects the structural *mistakes* of Sections 2.2 and 4.2: omission of
    directives or sections, duplication of directives (stray copy-paste),
    misplacement of directives into other sections, and insertion of foreign
    directives "borrowed" from another program's configuration.

:class:`StructuralVariationsPlugin`
    Generates the semantically neutral *variations* of Section 5.3 used to
    probe how flexible a parser is: reordering sections, reordering
    directives inside a section, mixed-case directive names, extra
    whitespace around separators and truncated (but unambiguous) directive
    names.  A robust system should accept all of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import (
    FaultScenario,
    NodeAddress,
    Operation,
    SetFieldOperation,
    resolve_address,
)
from repro.core.templates.compose import RandomSubsetTemplate, UnionTemplate
from repro.core.templates.primitives import (
    DeleteTemplate,
    DuplicateTemplate,
    InsertTemplate,
    MoveTemplate,
)
from repro.core.views.structure_view import StructureView
from repro.errors import TemplateError
from repro.plugins.base import (
    ErrorGeneratorPlugin,
    positive_int_param,
    register_plugin,
    string_list_param,
)

__all__ = [
    "StructuralErrorsPlugin",
    "StructuralVariationsPlugin",
    "PermuteChildrenOperation",
    "VARIATION_CLASSES",
]


# ------------------------------------------------------------------- operations
@dataclass(frozen=True)
class PermuteChildrenOperation(Operation):
    """Reorder the children of a node according to a fixed permutation.

    ``permutation`` maps new positions to old positions and must cover every
    child of the addressed node exactly once (children beyond the permutation
    length keep their relative order at the end).
    """

    parent: NodeAddress
    permutation: tuple[int, ...]

    def apply(self, config_set: ConfigSet) -> None:
        parent = resolve_address(config_set, self.parent)
        children = list(parent.children)
        if sorted(self.permutation) != list(range(len(self.permutation))):
            raise TemplateError("permutation must be a rearrangement of 0..n-1")
        if len(self.permutation) > len(children):
            raise TemplateError("permutation longer than the child list")
        reordered = [children[old_index] for old_index in self.permutation]
        reordered.extend(children[len(self.permutation):])
        parent.children = reordered

    def apply_with_undo(self, config_set: ConfigSet):
        parent = resolve_address(config_set, self.parent)
        before = list(parent.children)
        self.apply(config_set)

        def undo() -> None:
            parent.children = before

        return undo

    def touched_trees(self) -> frozenset[str]:
        return frozenset({self.parent.tree})

    def describe(self) -> str:
        return f"permute children of {self.parent} to order {self.permutation}"


# ----------------------------------------------------------- structural mistakes
@register_plugin
class StructuralErrorsPlugin(ErrorGeneratorPlugin):
    """Omission, duplication, misplacement and foreign-directive insertion.

    Parameters
    ----------
    include:
        Which error classes to generate; any subset of ``{"omit-directive",
        "omit-section", "duplicate-directive", "misplace-directive",
        "foreign-directive"}``.
    foreign_directives:
        Directive nodes borrowed from another system's configuration, used by
        the ``foreign-directive`` class (rule-based "borrowing", Section 2.2).
    max_scenarios_per_class:
        When set, a random subset of this size is kept per error class.
    """

    name = "structural"
    param_names = ("include", "max_scenarios_per_class")

    ALL_CLASSES = (
        "omit-directive",
        "omit-section",
        "duplicate-directive",
        "misplace-directive",
        "foreign-directive",
    )

    def __init__(
        self,
        include: Sequence[str] | None = None,
        foreign_directives: Sequence[ConfigNode] | None = None,
        max_scenarios_per_class: int | None = None,
    ):
        self.include = tuple(include) if include is not None else self.ALL_CLASSES
        unknown = set(self.include) - set(self.ALL_CLASSES)
        if unknown:
            raise TemplateError(f"unknown structural error classes: {sorted(unknown)}")
        self.foreign_directives = list(foreign_directives or [])
        self.max_scenarios_per_class = max_scenarios_per_class
        self._view = StructureView()

    @property
    def view(self) -> StructureView:
        return self._view

    def manifest_params(self) -> dict:
        return {
            "include": list(self.include),
            "max_scenarios_per_class": self.max_scenarios_per_class,
        }

    @classmethod
    def from_params(cls, params) -> "StructuralErrorsPlugin":
        cls.check_param_names(params)
        include = None
        if params.get("include") is not None:
            include = string_list_param("include", params["include"], allowed=cls.ALL_CLASSES)
        return cls(
            include=include,
            max_scenarios_per_class=positive_int_param(
                "max_scenarios_per_class", params.get("max_scenarios_per_class")
            ),
        )

    def _templates(self) -> list:
        templates = []
        if "omit-directive" in self.include:
            templates.append(DeleteTemplate("//directive", category="structure-omit-directive"))
        if "omit-section" in self.include:
            templates.append(DeleteTemplate("//section", category="structure-omit-section"))
        if "duplicate-directive" in self.include:
            templates.append(DuplicateTemplate("//directive", category="structure-duplicate"))
        if "misplace-directive" in self.include:
            templates.append(
                MoveTemplate("//directive", "//section", category="structure-misplace")
            )
        if "foreign-directive" in self.include and self.foreign_directives:
            templates.append(
                InsertTemplate("//section", self.foreign_directives, category="structure-foreign")
            )
        return templates

    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        for template in self._templates():
            if self.max_scenarios_per_class is not None:
                template = RandomSubsetTemplate(template, self.max_scenarios_per_class)
            scenarios.extend(template.generate(view_set, rng))
        # namespacing avoids id collisions across classes
        return UnionTemplate([_Precomputed(scenarios)]).generate(view_set, rng)


class _Precomputed:
    """Internal template wrapper returning an already-computed scenario list."""

    category = "precomputed"

    def __init__(self, scenarios: list[FaultScenario]):
        self._scenarios = scenarios

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        return self._scenarios


# ---------------------------------------------------------- structural variations
#: Variation classes of Table 2, in the paper's order.
VARIATION_CLASSES = (
    "section-order",
    "directive-order",
    "separator-whitespace",
    "mixed-case-names",
    "truncated-names",
)


@register_plugin
class StructuralVariationsPlugin(ErrorGeneratorPlugin):
    """Semantically neutral variations of a configuration file (Section 5.3).

    For each requested variation class the plugin produces ``variants_per_class``
    scenarios, each derived with independent random choices.  A system that
    supports the variation class should accept every one of these files.

    Parameters
    ----------
    classes:
        Subset of :data:`VARIATION_CLASSES` to generate.
    variants_per_class:
        Number of variant configurations per class (the paper uses 10).
    whitespace_styles:
        Separator spellings tried by the ``separator-whitespace`` class.
    min_truncation:
        Minimum number of leading characters kept when truncating names.
    """

    name = "structural-variations"
    param_names = ("classes", "variants_per_class", "min_truncation")

    def __init__(
        self,
        classes: Sequence[str] | None = None,
        variants_per_class: int = 10,
        whitespace_styles: Sequence[str] = ("=", "  =  ", " =\t", "\t=\t"),
        min_truncation: int = 4,
    ):
        self.classes = tuple(classes) if classes is not None else VARIATION_CLASSES
        unknown = set(self.classes) - set(VARIATION_CLASSES)
        if unknown:
            raise TemplateError(f"unknown variation classes: {sorted(unknown)}")
        self.variants_per_class = variants_per_class
        self.whitespace_styles = tuple(whitespace_styles)
        self.min_truncation = min_truncation
        self._view = StructureView()

    @property
    def view(self) -> StructureView:
        return self._view

    def manifest_params(self) -> dict:
        return {
            "classes": list(self.classes),
            "variants_per_class": self.variants_per_class,
            "min_truncation": self.min_truncation,
        }

    @classmethod
    def from_params(cls, params) -> "StructuralVariationsPlugin":
        cls.check_param_names(params)
        classes = None
        if params.get("classes") is not None:
            classes = string_list_param("classes", params["classes"], allowed=VARIATION_CLASSES)
        variants = positive_int_param("variants_per_class", params.get("variants_per_class"))
        min_truncation = positive_int_param("min_truncation", params.get("min_truncation"))
        kwargs = {}
        if variants is not None:
            kwargs["variants_per_class"] = variants
        if min_truncation is not None:
            kwargs["min_truncation"] = min_truncation
        return cls(classes=classes, **kwargs)

    # ---------------------------------------------------------------- helpers
    @staticmethod
    def _containers(view_set: ConfigSet) -> list[tuple[ConfigNode, NodeAddress]]:
        """Nodes that hold directives, with their addresses."""
        containers = []
        for tree in view_set:
            for node, path in tree.root.walk_with_paths():
                if node.kind in ("file", "section") and node.children_of_kind("directive"):
                    containers.append((node, NodeAddress(tree.name, path)))
        return containers

    @staticmethod
    def _directives(view_set: ConfigSet) -> list[tuple[ConfigNode, NodeAddress]]:
        directives = []
        for tree in view_set:
            for node, path in tree.root.walk_with_paths():
                if node.kind == "directive" and node.name:
                    directives.append((node, NodeAddress(tree.name, path)))
        return directives

    # --------------------------------------------------------------- generate
    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        for variation_class in self.classes:
            builder = getattr(self, "_build_" + variation_class.replace("-", "_"))
            for variant_index in range(self.variants_per_class):
                scenario = builder(view_set, rng, variant_index)
                if scenario is not None:
                    scenarios.append(scenario)
        return scenarios

    def _build_section_order(self, view_set, rng, variant_index) -> FaultScenario | None:
        operations = []
        for tree in view_set:
            sections = tree.root.children_of_kind("section")
            if len(sections) < 2:
                continue
            indices = [child.index_in_parent() for child in tree.root.children]
            section_positions = [node.index_in_parent() for node in sections]
            shuffled = section_positions[:]
            rng.shuffle(shuffled)
            permutation = list(range(len(tree.root.children)))
            for original, new in zip(section_positions, shuffled):
                permutation[original] = new
            operations.append(
                PermuteChildrenOperation(
                    NodeAddress(tree.name, ()), tuple(permutation)
                )
            )
            del indices
        if not operations:
            return None
        return FaultScenario(
            scenario_id=f"variation-section-order-{variant_index}",
            description="reorder top-level sections",
            category="variation-section-order",
            operations=tuple(operations),
            metadata={"variation": "section-order", "variant": variant_index},
        )

    def _build_directive_order(self, view_set, rng, variant_index) -> FaultScenario | None:
        operations = []
        # Shuffle the deepest containers first: permuting a parent changes the
        # child indices its nested sections were addressed by, so nested
        # containers must be reordered before their ancestors.
        containers = sorted(
            self._containers(view_set), key=lambda pair: len(pair[1].path), reverse=True
        )
        for container, container_address in containers:
            child_count = len(container.children)
            if child_count < 2:
                continue
            permutation = list(range(child_count))
            rng.shuffle(permutation)
            operations.append(PermuteChildrenOperation(container_address, tuple(permutation)))
        if not operations:
            return None
        return FaultScenario(
            scenario_id=f"variation-directive-order-{variant_index}",
            description="reorder directives within their sections",
            category="variation-directive-order",
            operations=tuple(operations),
            metadata={"variation": "directive-order", "variant": variant_index},
        )

    #: Separator spellings used for formats whose separator is whitespace only
    #: (Apache-style ``Name value`` directives have no ``=`` to decorate).
    WHITESPACE_ONLY_STYLES = (" ", "  ", "\t", "    ")

    def _build_separator_whitespace(self, view_set, rng, variant_index) -> FaultScenario | None:
        operations = []
        for node, address in self._directives(view_set):
            if node.value is None:
                continue
            current = node.get("separator") or "="
            styles = self.whitespace_styles if "=" in current else self.WHITESPACE_ONLY_STYLES
            style = rng.choice(styles)
            operations.append(SetFieldOperation(address, "attr:separator", style))
        if not operations:
            return None
        return FaultScenario(
            scenario_id=f"variation-separator-whitespace-{variant_index}",
            description="vary whitespace around directive separators",
            category="variation-separator-whitespace",
            operations=tuple(operations),
            metadata={"variation": "separator-whitespace", "variant": variant_index},
        )

    def _build_mixed_case_names(self, view_set, rng, variant_index) -> FaultScenario | None:
        operations = []
        for node, address in self._directives(view_set):
            name = node.name or ""
            if not any(char.isalpha() for char in name):
                continue
            mixed = "".join(
                char.upper() if rng.random() < 0.5 else char.lower() for char in name
            )
            if mixed == name:
                mixed = name.swapcase()
            operations.append(SetFieldOperation(address, "name", mixed))
        if not operations:
            return None
        return FaultScenario(
            scenario_id=f"variation-mixed-case-names-{variant_index}",
            description="randomise the case of directive names",
            category="variation-mixed-case-names",
            operations=tuple(operations),
            metadata={"variation": "mixed-case-names", "variant": variant_index},
        )

    def _build_truncated_names(self, view_set, rng, variant_index) -> FaultScenario | None:
        directives = self._directives(view_set)
        all_names = [node.name or "" for node, _ in directives]
        operations = []
        for node, address in directives:
            truncated = self._unambiguous_truncation(node.name or "", all_names, rng)
            if truncated is not None:
                operations.append(SetFieldOperation(address, "name", truncated))
        if not operations:
            return None
        return FaultScenario(
            scenario_id=f"variation-truncated-names-{variant_index}",
            description="truncate directive names to unambiguous prefixes",
            category="variation-truncated-names",
            operations=tuple(operations),
            metadata={"variation": "truncated-names", "variant": variant_index},
        )

    def _unambiguous_truncation(
        self, name: str, all_names: list[str], rng: random.Random
    ) -> str | None:
        """Shortest-to-full random prefix of ``name`` that no other name shares."""
        if len(name) <= self.min_truncation:
            return None
        others = [other for other in all_names if other != name]
        eligible_lengths = [
            length
            for length in range(self.min_truncation, len(name))
            if not any(other.lower().startswith(name[:length].lower()) for other in others)
        ]
        if not eligible_lengths:
            return None
        return name[: rng.choice(eligible_lengths)]
