"""Constraint-violation plugin: inconsistent cross-directive configurations.

The paper's first class of semantic errors (Section 2.3) is the *inconsistent
configuration*: the value of one parameter must relate in a specific way to
the value of another (the shared-memory pool vs. the maximum number of client
connections, or Postgres' requirement that ``max_fsm_pages`` be at least
sixteen times ``max_fsm_relations``), and an operator who does not know the
relation produces a configuration that violates it.

This plugin takes declarative :class:`ConstraintSpec` descriptions and
produces scenarios that set one of the related directives to a value breaking
the constraint while leaving the other untouched.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import FaultScenario, SetFieldOperation, address_of
from repro.core.views.structure_view import StructureView
from repro.errors import PluginError
from repro.plugins.base import ErrorGeneratorPlugin, register_plugin

__all__ = ["ConstraintSpec", "ConstraintViolationPlugin"]


@dataclass(frozen=True)
class ConstraintSpec:
    """A relation between two directives and how to violate it.

    ``violating_value`` receives the current values of the two directives (as
    strings) and returns a new value for ``directive`` that breaks the
    relation with ``related_directive``.
    """

    name: str
    directive: str
    related_directive: str
    description: str
    violating_value: Callable[[str | None, str | None], str]


def _find_directive(view_set: ConfigSet, name: str) -> tuple[ConfigNode, object] | None:
    lowered = name.lower()
    for tree in view_set:
        for node in tree.walk():
            if node.kind == "directive" and (node.name or "").lower() == lowered:
                return node, address_of(view_set, node)
    return None


@register_plugin
class ConstraintViolationPlugin(ErrorGeneratorPlugin):
    """Generate configurations violating declared cross-directive constraints."""

    name = "semantic-constraints"

    def __init__(self, constraints: Sequence[ConstraintSpec]):
        if not constraints:
            raise PluginError("ConstraintViolationPlugin requires at least one constraint")
        self.constraints = list(constraints)
        self._view = StructureView()

    @property
    def view(self) -> StructureView:
        return self._view

    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        for ordinal, spec in enumerate(self.constraints):
            target = _find_directive(view_set, spec.directive)
            related = _find_directive(view_set, spec.related_directive)
            if target is None:
                continue
            target_node, target_address = target
            related_value = related[0].value if related is not None else None
            new_value = spec.violating_value(target_node.value, related_value)
            scenarios.append(
                FaultScenario(
                    scenario_id=f"constraint-{ordinal}-{spec.name}",
                    description=f"violate constraint {spec.name}: {spec.description}",
                    category="semantic-constraint",
                    operations=(SetFieldOperation(target_address, "value", new_value),),
                    metadata={
                        "constraint": spec.name,
                        "directive": spec.directive,
                        "related_directive": spec.related_directive,
                        "original": target_node.value,
                        "mutated": new_value,
                    },
                )
            )
        return scenarios
