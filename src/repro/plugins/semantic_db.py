"""Constraint-violation plugin: inconsistent cross-directive configurations.

The paper's first class of semantic errors (Section 2.3) is the *inconsistent
configuration*: the value of one parameter must relate in a specific way to
the value of another (the shared-memory pool vs. the maximum number of client
connections, or Postgres' requirement that ``max_fsm_pages`` be at least
sixteen times ``max_fsm_relations``), and an operator who does not know the
relation produces a configuration that violates it.

This plugin takes declarative :class:`ConstraintSpec` descriptions and
produces scenarios that set one of the related directives to a value breaking
the constraint while leaving the other untouched.

Two named catalogs ship with the plugin -- :data:`MYSQL_CONSTRAINTS` and
:data:`POSTGRES_CONSTRAINTS` -- built exclusively from picklable violating-
value callables (:class:`ScaledRelatedValue`), so constraint campaigns can
run under the process executor.  :func:`default_constraints` selects the
catalog for a system (or the combined catalog when the system is unknown:
generation simply produces no scenarios for directives a configuration does
not contain).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import FaultScenario, SetFieldOperation, address_of
from repro.core.views.structure_view import StructureView
from repro.errors import PluginError, SpecError
from repro.plugins.base import ErrorGeneratorPlugin, register_plugin, string_list_param

__all__ = [
    "ConstraintSpec",
    "ConstraintViolationPlugin",
    "ScaledRelatedValue",
    "MYSQL_CONSTRAINTS",
    "POSTGRES_CONSTRAINTS",
    "default_constraints",
]


@dataclass(frozen=True)
class ConstraintSpec:
    """A relation between two directives and how to violate it.

    ``violating_value`` receives the current values of the two directives (as
    strings) and returns a new value for ``directive`` that breaks the
    relation with ``related_directive``.  Use a picklable callable (a
    module-level function or :class:`ScaledRelatedValue`, not a lambda) if
    the campaign should be runnable under the process executor.
    """

    name: str
    directive: str
    related_directive: str
    description: str
    violating_value: Callable[[str | None, str | None], str]


_SIZE_MULTIPLIERS = {"k": 1024, "m": 1024**2, "g": 1024**3}


def parse_config_int(text: str | None, fallback: int) -> int:
    """Best-effort integer from a configuration value (``"1M"`` -> 1048576).

    Understands optional sign, leading digits, and a single K/M/G multiplier
    suffix; anything unparsable yields ``fallback`` (the directive's built-in
    default, which is what the system would use too).
    """
    if text is None:
        return fallback
    stripped = text.strip().strip("'\"")
    index = 0
    if index < len(stripped) and stripped[index] in "+-":
        index += 1
    digits_end = index
    while digits_end < len(stripped) and stripped[digits_end].isdigit():
        digits_end += 1
    if digits_end == index:
        return fallback
    magnitude = int(stripped[:digits_end])
    if digits_end < len(stripped):
        multiplier = _SIZE_MULTIPLIERS.get(stripped[digits_end].lower())
        if multiplier is not None:
            magnitude *= multiplier
    return magnitude


@dataclass(frozen=True)
class ScaledRelatedValue:
    """Picklable violating value: ``factor * related + offset``.

    ``fallback`` stands in for the related directive's value when it is not
    present in the configuration (the system falls back to its built-in
    default in that case, and so must the violation).  The result is clamped
    at zero -- configuration integers are non-negative.
    """

    factor: float = 1.0
    offset: int = 0
    fallback: int = 0

    def __call__(self, current: str | None, related: str | None) -> str:
        base = parse_config_int(related, self.fallback)
        return str(max(0, int(self.factor * base) + self.offset))


#: Cross-directive relations of the simulated PostgreSQL server.  The first
#: is the paper's Section 5.2 example: the free-space-map page pool must be
#: able to hold at least sixteen pages per tracked relation; Postgres checks
#: the relation at startup and refuses to come up when it is violated.
POSTGRES_CONSTRAINTS: tuple[ConstraintSpec, ...] = (
    ConstraintSpec(
        name="fsm-pages-vs-relations",
        directive="max_fsm_pages",
        related_directive="max_fsm_relations",
        description="max_fsm_pages must be at least 16 * max_fsm_relations",
        violating_value=ScaledRelatedValue(factor=16, offset=-16, fallback=1000),
    ),
    ConstraintSpec(
        name="connections-vs-reserved",
        directive="max_connections",
        related_directive="superuser_reserved_connections",
        description="max_connections must exceed superuser_reserved_connections",
        violating_value=ScaledRelatedValue(factor=1, offset=0, fallback=3),
    ),
    ConstraintSpec(
        name="reserved-vs-connections",
        directive="superuser_reserved_connections",
        related_directive="max_connections",
        description="superuser_reserved_connections must be less than max_connections",
        violating_value=ScaledRelatedValue(factor=1, offset=0, fallback=100),
    ),
)

#: Cross-directive relations of MySQL option files.  MySQL does not check
#: either relation at startup (values are silently clamped or accepted), so
#: these scenarios typically land in the "ignored" bucket -- the asymmetry
#: with Postgres is exactly the paper's point.
MYSQL_CONSTRAINTS: tuple[ConstraintSpec, ...] = (
    ConstraintSpec(
        name="net-buffer-vs-packet",
        directive="net_buffer_length",
        related_directive="max_allowed_packet",
        description="net_buffer_length must not exceed max_allowed_packet",
        violating_value=ScaledRelatedValue(factor=2, offset=0, fallback=1024**2),
    ),
    ConstraintSpec(
        name="thread-cache-vs-connections",
        directive="thread_cache_size",
        related_directive="max_connections",
        description="thread_cache_size should not exceed max_connections",
        violating_value=ScaledRelatedValue(factor=2, offset=0, fallback=100),
    ),
)

_CATALOGS: dict[str, tuple[ConstraintSpec, ...]] = {
    "mysql": MYSQL_CONSTRAINTS,
    "postgres": POSTGRES_CONSTRAINTS,
    "postgresql": POSTGRES_CONSTRAINTS,
}


def default_constraints(system: str | None = None) -> tuple[ConstraintSpec, ...]:
    """Constraint catalog for one system, or the combined catalog.

    Directives a configuration does not contain generate no scenarios, so
    the combined catalog is safe to run against any system -- on Apache or
    the DNS servers it simply produces an empty campaign.
    """
    if system is not None:
        catalog = _CATALOGS.get(system.strip().lower())
        if catalog is not None:
            return catalog
    return MYSQL_CONSTRAINTS + POSTGRES_CONSTRAINTS


def _find_directive(view_set: ConfigSet, name: str) -> tuple[ConfigNode, object] | None:
    lowered = name.lower()
    for tree in view_set:
        for node in tree.walk():
            if node.kind == "directive" and (node.name or "").lower() == lowered:
                return node, address_of(view_set, node)
    return None


@register_plugin
class ConstraintViolationPlugin(ErrorGeneratorPlugin):
    """Generate configurations violating declared cross-directive constraints."""

    name = "semantic-constraints"
    param_names = ("system", "constraints")

    def __init__(self, constraints: Sequence[ConstraintSpec] | None = None):
        if constraints is None:
            constraints = default_constraints()
        if not constraints:
            raise PluginError("ConstraintViolationPlugin requires at least one constraint")
        self.constraints = list(constraints)
        self._view = StructureView()

    @property
    def view(self) -> StructureView:
        return self._view

    def manifest_params(self) -> dict:
        return {"constraints": [spec.name for spec in self.constraints]}

    @classmethod
    def from_params(cls, params) -> "ConstraintViolationPlugin":
        """Build from a catalog selection: by ``system``, by constraint ``names``, or both.

        ``system`` picks a shipped catalog (unknown systems fall back to the
        combined one, exactly like :func:`default_constraints`); ``constraints``
        selects individual relations by name from that catalog.
        """
        cls.check_param_names(params)
        system = params.get("system")
        if system is not None:
            if not isinstance(system, str):
                raise SpecError(f"system: expected a system name, got {system!r}")
            # a typo'd catalog name must not silently fall back to the
            # combined catalog; registered systems without a catalog of
            # their own are fine (they generate an empty campaign)
            from repro.registry import available_systems

            if system.strip().lower() not in _CATALOGS and system not in available_systems():
                raise SpecError(
                    f"system: unknown system {system!r}; catalogs exist for "
                    f"{', '.join(sorted(set(_CATALOGS)))}, and any registered "
                    f"system is accepted ({', '.join(available_systems())})"
                )
        catalog = default_constraints(system)
        names = params.get("constraints")
        if names is None:
            return cls(catalog)
        by_name = {spec.name: spec for spec in catalog}
        selected = string_list_param("constraints", names, allowed=tuple(by_name))
        if not selected:
            raise SpecError("constraints: must name at least one constraint")
        return cls([by_name[name] for name in selected])

    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        for ordinal, spec in enumerate(self.constraints):
            target = _find_directive(view_set, spec.directive)
            related = _find_directive(view_set, spec.related_directive)
            if target is None:
                continue
            target_node, target_address = target
            related_value = related[0].value if related is not None else None
            new_value = spec.violating_value(target_node.value, related_value)
            scenarios.append(
                FaultScenario(
                    scenario_id=f"constraint-{ordinal}-{spec.name}",
                    description=f"violate constraint {spec.name}: {spec.description}",
                    category="semantic-constraint",
                    operations=(SetFieldOperation(target_address, "value", new_value),),
                    metadata={
                        "constraint": spec.name,
                        "directive": spec.directive,
                        "related_directive": spec.related_directive,
                        "original": target_node.value,
                        "mutated": new_value,
                    },
                )
            )
        return scenarios
