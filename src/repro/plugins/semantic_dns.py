"""DNS semantic-errors plugin (RFC-1912 style record mistakes).

The plugin operates on the system-independent DNS record view
(:class:`~repro.core.views.dns_view.DnsRecordView`) and injects the
record-level misconfigurations discussed in Sections 2.3 and 5.4:

1. **missing-ptr** -- a host's reverse mapping is removed (forward and
   reverse mappings are no longer consistent),
2. **ptr-to-cname** -- a PTR record is redirected to an alias instead of the
   canonical host name,
3. **ns-cname-clash** -- a CNAME record is added for a name that already
   owns an NS record (RFC-1912 forbids a CNAME coexisting with other data),
4. **mx-to-cname** -- an MX record is redirected to an alias,
5. **cname-for-address** -- a host's A record is replaced by a CNAME
   (the Section 2.3 example of using the wrong record type to assign an
   address),
6. **missing-forward** -- a host's A record is removed while its PTR stays.

Whether a scenario can be injected at all depends on the expressiveness of
the target's configuration format: djbdns' combined ``=`` directive cannot
express classes 1, 2 and 6, and the engine reports those scenarios as
impossible (Table 3 "N/A" entries).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import (
    DeleteOperation,
    FaultScenario,
    InsertOperation,
    NodeAddress,
    SetFieldOperation,
)
from repro.core.views.dns_view import DnsRecordView, VIEW_TREE_NAME, make_record_node
from repro.errors import PluginError
from repro.plugins.base import (
    ErrorGeneratorPlugin,
    positive_int_param,
    register_plugin,
    string_list_param,
)

__all__ = ["DnsSemanticErrorsPlugin", "FAULT_CLASSES"]

#: Supported fault classes, in the order used by the Table 3 benchmark.
FAULT_CLASSES = (
    "missing-ptr",
    "ptr-to-cname",
    "ns-cname-clash",
    "mx-to-cname",
    "cname-for-address",
    "missing-forward",
)


@register_plugin
class DnsSemanticErrorsPlugin(ErrorGeneratorPlugin):
    """Generate RFC-1912 style record-level configuration errors.

    Parameters
    ----------
    classes:
        Which fault classes to generate (default: all of :data:`FAULT_CLASSES`).
    max_scenarios_per_class:
        When set, at most this many scenarios are kept per class (random
        subset, drawn from the engine's seeded RNG).
    """

    name = "semantic-dns"
    param_names = ("classes", "max_scenarios_per_class")

    def __init__(
        self,
        classes: Sequence[str] | None = None,
        max_scenarios_per_class: int | None = None,
    ):
        self.classes = tuple(classes) if classes is not None else FAULT_CLASSES
        unknown = set(self.classes) - set(FAULT_CLASSES)
        if unknown:
            raise PluginError(f"unknown DNS semantic fault classes: {sorted(unknown)}")
        self.max_scenarios_per_class = max_scenarios_per_class
        self._view = DnsRecordView()

    @property
    def view(self) -> DnsRecordView:
        return self._view

    def manifest_params(self) -> dict:
        return {
            "classes": list(self.classes),
            "max_scenarios_per_class": self.max_scenarios_per_class,
        }

    @classmethod
    def from_params(cls, params) -> "DnsSemanticErrorsPlugin":
        cls.check_param_names(params)
        classes = None
        if params.get("classes") is not None:
            classes = string_list_param("classes", params["classes"], allowed=FAULT_CLASSES)
        return cls(
            classes=classes,
            max_scenarios_per_class=positive_int_param(
                "max_scenarios_per_class", params.get("max_scenarios_per_class")
            ),
        )

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _records(view_set: ConfigSet, rtype: str | None = None) -> list[tuple[ConfigNode, NodeAddress]]:
        tree = view_set.get(VIEW_TREE_NAME)
        result = []
        # records are direct children of the root: their address is just the
        # child index, computed in one enumerate pass (no per-node up-walk)
        for index, node in enumerate(tree.root.children):
            if node.kind != "dns-record":
                continue
            if rtype is None or node.get("rtype") == rtype:
                result.append((node, NodeAddress(VIEW_TREE_NAME, (index,))))
        return result

    @staticmethod
    def _alias_names(view_set: ConfigSet) -> list[str]:
        """Owner names of CNAME records (candidates for "points to an alias")."""
        tree = view_set.get(VIEW_TREE_NAME)
        return [
            node.name or ""
            for node in tree.root.children_of_kind("dns-record")
            if node.get("rtype") == "CNAME"
        ]

    @staticmethod
    def _root_address(view_set: ConfigSet) -> NodeAddress:
        return NodeAddress(VIEW_TREE_NAME, ())

    # ---------------------------------------------------------------- builders
    def _build_missing_ptr(self, view_set: ConfigSet) -> list[FaultScenario]:
        scenarios = []
        for ordinal, (record, address) in enumerate(self._records(view_set, "PTR")):
            scenarios.append(
                FaultScenario(
                    scenario_id=f"missing-ptr-{ordinal}",
                    description=f"remove the PTR record mapping back to {record.value}",
                    category="semantic-missing-ptr",
                    operations=(DeleteOperation(address),),
                    metadata={"owner": record.name, "target": record.value},
                )
            )
        return scenarios

    def _build_missing_forward(self, view_set: ConfigSet) -> list[FaultScenario]:
        scenarios = []
        ptr_targets = {record.value for record, _ in self._records(view_set, "PTR")}
        ordinal = 0
        for record, address in self._records(view_set, "A"):
            if record.name not in ptr_targets:
                continue
            scenarios.append(
                FaultScenario(
                    scenario_id=f"missing-forward-{ordinal}",
                    description=f"remove the A record of {record.name} while keeping its PTR",
                    category="semantic-missing-forward",
                    operations=(DeleteOperation(address),),
                    metadata={"owner": record.name, "address": record.value},
                )
            )
            ordinal += 1
        return scenarios

    def _build_ptr_to_cname(self, view_set: ConfigSet) -> list[FaultScenario]:
        aliases = self._alias_names(view_set)
        if not aliases:
            return []
        scenarios = []
        ordinal = 0
        for record, address in self._records(view_set, "PTR"):
            for alias in aliases:
                if alias == record.value:
                    continue
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"ptr-to-cname-{ordinal}",
                        description=f"point the PTR of {record.name} at the alias {alias}",
                        category="semantic-ptr-to-cname",
                        operations=(SetFieldOperation(address, "value", alias),),
                        metadata={"owner": record.name, "original": record.value, "alias": alias},
                    )
                )
                ordinal += 1
        return scenarios

    def _build_mx_to_cname(self, view_set: ConfigSet) -> list[FaultScenario]:
        aliases = self._alias_names(view_set)
        if not aliases:
            return []
        scenarios = []
        ordinal = 0
        for record, address in self._records(view_set, "MX"):
            for alias in aliases:
                if alias == record.value:
                    continue
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"mx-to-cname-{ordinal}",
                        description=f"point the MX of {record.name} at the alias {alias}",
                        category="semantic-mx-to-cname",
                        operations=(SetFieldOperation(address, "value", alias),),
                        metadata={"owner": record.name, "original": record.value, "alias": alias},
                    )
                )
                ordinal += 1
        return scenarios

    def _build_ns_cname_clash(self, view_set: ConfigSet) -> list[FaultScenario]:
        a_records = self._records(view_set, "A")
        if not a_records:
            return []
        cname_target = a_records[0][0].name or ""
        scenarios = []
        seen_owners: set[str] = set()
        ordinal = 0
        for record, _address in self._records(view_set, "NS"):
            owner = record.name or ""
            if owner in seen_owners:
                continue
            seen_owners.add(owner)
            new_record = make_record_node(owner, "CNAME", cname_target)
            scenarios.append(
                FaultScenario(
                    scenario_id=f"ns-cname-clash-{ordinal}",
                    description=(
                        f"declare {owner} as an alias of {cname_target} although it already "
                        "owns NS records"
                    ),
                    category="semantic-ns-cname-clash",
                    operations=(InsertOperation(self._root_address(view_set), new_record),),
                    metadata={"owner": owner, "alias_target": cname_target},
                )
            )
            ordinal += 1
        return scenarios

    def _build_cname_for_address(self, view_set: ConfigSet) -> list[FaultScenario]:
        a_records = self._records(view_set, "A")
        if len(a_records) < 2:
            return []
        scenarios = []
        ordinal = 0
        for record, address in self._records(view_set, "A"):
            # pick another host as the bogus alias target
            other = next(
                (candidate for candidate, _ in a_records if candidate.name != record.name), None
            )
            if other is None:
                continue
            replacement = make_record_node(record.name or "", "CNAME", other.name or "")
            replacement.set("source_file", record.get("source_file"))
            scenarios.append(
                FaultScenario(
                    scenario_id=f"cname-for-address-{ordinal}",
                    description=(
                        f"replace the A record of {record.name} with a CNAME to {other.name} "
                        "(wrong record type used to assign an address)"
                    ),
                    category="semantic-cname-for-address",
                    operations=(
                        DeleteOperation(address),
                        InsertOperation(self._root_address(view_set), replacement),
                    ),
                    metadata={"owner": record.name, "alias_target": other.name},
                )
            )
            ordinal += 1
        return scenarios

    # ---------------------------------------------------------------- generate
    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        if VIEW_TREE_NAME not in view_set:
            raise PluginError("semantic-dns plugin requires the DNS record view")
        scenarios: list[FaultScenario] = []
        builders = {
            "missing-ptr": self._build_missing_ptr,
            "ptr-to-cname": self._build_ptr_to_cname,
            "ns-cname-clash": self._build_ns_cname_clash,
            "mx-to-cname": self._build_mx_to_cname,
            "cname-for-address": self._build_cname_for_address,
            "missing-forward": self._build_missing_forward,
        }
        for fault_class in self.classes:
            class_scenarios = builders[fault_class](view_set)
            if (
                self.max_scenarios_per_class is not None
                and len(class_scenarios) > self.max_scenarios_per_class
            ):
                class_scenarios = rng.sample(class_scenarios, self.max_scenarios_per_class)
            scenarios.extend(class_scenarios)
        return scenarios
