"""Omission/duplication error plugin: the whole-directive slips.

The paper's human-error taxonomy (Sections 2.2 and 4.2) contains two error
shapes the other plugins never inject in their *conflicting* form:

``omit-directive`` / ``omit-section``
    A directive (or a whole block) the administrator forgot to write.
    ``required_directives`` narrows the omissions to a set of directive
    names known to matter (e.g. ``HostKey`` for sshd, ``listen`` for
    nginx); by default every directive is a candidate -- any of them might
    be the required one.

``duplicate-conflict``
    The copy-paste slip: the same directive appears twice with *different*
    values.  Unlike the structural plugin's verbatim duplication, the copy
    carries a conflicting value, so the system's duplicate-handling policy
    is what decides the outcome: nginx refuses (``directive is
    duplicate``), MySQL silently keeps the *last* value, sshd silently
    keeps the *first* -- three different answers to the same slip.  The
    copy is inserted right behind the original (the place a stray paste
    usually lands, and the only spot every dialect can express).

Conflicting values are derived deterministically from the original via the
campaign RNG: numbers are doubled-or-incremented, booleans/toggles are
flipped, enumerated-looking words are case-flipped, and everything else
gets a path/name-style mangling -- always a *plausible* value of the same
shape, never random noise (plausibility is what lets the slip survive
superficial review, Section 2.1).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.templates.base import (
    AddressIndex,
    DeleteOperation,
    FaultScenario,
    InsertOperation,
    NodeAddress,
)
from repro.core.views.structure_view import StructureView
from repro.errors import TemplateError
from repro.plugins.base import (
    ErrorGeneratorPlugin,
    positive_int_param,
    register_plugin,
    string_list_param,
)

__all__ = ["OmissionDuplicationPlugin", "conflicting_value"]

#: Value pairs flipped wholesale when a directive value matches one side.
_TOGGLES = {
    "on": "off", "off": "on",
    "yes": "no", "no": "yes",
    "true": "false", "false": "true",
    "1": "0", "0": "1",
}


def conflicting_value(original: str, rng: random.Random) -> str:
    """A plausible value of the same shape as ``original`` that conflicts.

    Deterministic given the RNG state; never returns ``original`` itself.
    """
    stripped = original.strip()
    lowered = stripped.lower()
    if lowered in _TOGGLES:
        flipped = _TOGGLES[lowered]
        return flipped.upper() if stripped.isupper() else flipped
    if stripped.lstrip("-").isdigit():
        number = int(stripped)
        # doubling keeps magnitudes plausible; +1 covers 0 and -1
        doubled = number * 2
        return str(doubled if doubled not in (number, 0) else number + 1)
    words = stripped.split()
    if len(words) > 1:
        # multi-word value: conflicting first word, rest kept
        return " ".join([conflicting_value(words[0], rng), *words[1:]])
    if any(char.isdigit() for char in stripped):
        # mixed token (ports in addresses, sizes, versions): bump each digit run
        return "".join(
            str((int(char) + 1) % 10) if char.isdigit() else char for char in stripped
        )
    if stripped and stripped != stripped.swapcase():
        alternative = stripped.swapcase()
    else:
        alternative = stripped + "2"
    # prefer a recognisable "other" spelling over pure noise
    return alternative if rng.random() < 0.5 else stripped + "2"


@register_plugin
class OmissionDuplicationPlugin(ErrorGeneratorPlugin):
    """Whole-directive omission, section omission and conflicting duplication.

    Parameters
    ----------
    include:
        Which error classes to generate; any subset of
        :data:`ALL_CLASSES`.
    required_directives:
        When given, ``omit-directive`` only drops directives with these
        names (matched case-insensitively) -- the "required" directives of
        the system under test.  Omission of anything else is still a valid
        experiment, just not one this run asks for.
    max_scenarios_per_class:
        When set, a deterministic random subset of this size is kept per
        error class.
    """

    name = "omission"
    param_names = ("include", "required_directives", "max_scenarios_per_class")

    ALL_CLASSES = ("omit-directive", "omit-section", "duplicate-conflict")

    def __init__(
        self,
        include: Sequence[str] | None = None,
        required_directives: Sequence[str] | None = None,
        max_scenarios_per_class: int | None = None,
    ):
        self.include = tuple(include) if include is not None else self.ALL_CLASSES
        unknown = set(self.include) - set(self.ALL_CLASSES)
        if unknown:
            raise TemplateError(f"unknown omission error classes: {sorted(unknown)}")
        self.required_directives = (
            tuple(required_directives) if required_directives is not None else None
        )
        self.max_scenarios_per_class = max_scenarios_per_class
        self._view = StructureView()

    @property
    def view(self) -> StructureView:
        return self._view

    def manifest_params(self) -> dict:
        return {
            "include": list(self.include),
            "required_directives": (
                list(self.required_directives) if self.required_directives is not None else None
            ),
            "max_scenarios_per_class": self.max_scenarios_per_class,
        }

    @classmethod
    def from_params(cls, params) -> "OmissionDuplicationPlugin":
        cls.check_param_names(params)
        include = None
        if params.get("include") is not None:
            include = string_list_param("include", params["include"], allowed=cls.ALL_CLASSES)
        required = None
        if params.get("required_directives") is not None:
            required = string_list_param("required_directives", params["required_directives"])
        return cls(
            include=include,
            required_directives=required,
            max_scenarios_per_class=positive_int_param(
                "max_scenarios_per_class", params.get("max_scenarios_per_class")
            ),
        )

    # ---------------------------------------------------------------- helpers
    def _wanted_directive(self, node: ConfigNode) -> bool:
        if self.required_directives is None:
            return True
        name = (node.name or "").lower()
        return any(name == wanted.lower() for wanted in self.required_directives)

    @staticmethod
    def _label(node: ConfigNode) -> str:
        return f"{node.kind}:{node.name}" if node.name else node.kind

    def _subset(self, scenarios: list[FaultScenario], rng: random.Random) -> list[FaultScenario]:
        if self.max_scenarios_per_class is None or len(scenarios) <= self.max_scenarios_per_class:
            return scenarios
        picked = rng.sample(range(len(scenarios)), self.max_scenarios_per_class)
        return [scenarios[index] for index in sorted(picked)]

    # --------------------------------------------------------------- generate
    def generate(self, view_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        addresses = AddressIndex(view_set)
        scenarios: list[FaultScenario] = []
        builders = {
            "omit-directive": self._omit_directives,
            "omit-section": self._omit_sections,
            "duplicate-conflict": self._duplicate_conflicts,
        }
        for error_class in self.include:
            scenarios.extend(self._subset(builders[error_class](view_set, addresses, rng), rng))
        return scenarios

    def _omit_directives(
        self, view_set: ConfigSet, addresses: AddressIndex, rng: random.Random
    ) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        for tree in view_set:
            for node in tree.walk():
                if node.kind != "directive" or not self._wanted_directive(node):
                    continue
                address = addresses.address_of(node)
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"omission-directive-{ordinal}-{self._label(node)}",
                        description=f"forget to write {self._label(node)} in {address.tree}",
                        category="omission-directive",
                        operations=(DeleteOperation(address),),
                        metadata={
                            "target": str(address),
                            "node": self._label(node),
                            "directive": node.name,
                        },
                    )
                )
                ordinal += 1
        return scenarios

    def _omit_sections(
        self, view_set: ConfigSet, addresses: AddressIndex, rng: random.Random
    ) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        for tree in view_set:
            for node in tree.walk():
                if node.kind != "section":
                    continue
                address = addresses.address_of(node)
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"omission-section-{ordinal}-{self._label(node)}",
                        description=f"forget the whole {self._label(node)} block of {address.tree}",
                        category="omission-section",
                        operations=(DeleteOperation(address),),
                        metadata={
                            "target": str(address),
                            "node": self._label(node),
                            "section": node.name,
                        },
                    )
                )
                ordinal += 1
        return scenarios

    def _duplicate_conflicts(
        self, view_set: ConfigSet, addresses: AddressIndex, rng: random.Random
    ) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        for tree in view_set:
            for node in tree.walk():
                if node.kind != "directive" or node.parent is None:
                    continue
                if node.value is None or not node.value.strip():
                    continue
                conflicted = conflicting_value(node.value, rng)
                copy = node.clone()
                copy.value = conflicted
                parent_address = addresses.address_of(node.parent)
                index = node.index_in_parent() + 1
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"duplicate-conflict-{ordinal}-{self._label(node)}",
                        description=(
                            f"paste a second {self._label(node)} with conflicting "
                            f"value {conflicted!r} (original {node.value!r})"
                        ),
                        category="duplicate-conflict",
                        operations=(InsertOperation(parent_address, copy, index=index),),
                        metadata={
                            "target": str(parent_address.child(index - 1)),
                            "node": self._label(node),
                            "directive": node.name,
                            "original": node.value,
                            "conflicting": conflicted,
                        },
                    )
                )
                ordinal += 1
        return scenarios
