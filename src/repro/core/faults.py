"""Fault tolerance for the injection harness itself.

The paper's method is to inject faults into a system and observe whether it
degrades or dies; this module applies the same standard to our own campaign
pipeline.  Without it, a single misbehaving experiment destroys a run: a SUT
call that hangs wedges its worker (and, serially, the whole campaign), and a
worker process that dies takes every in-flight scenario of its pool down
with an opaque ``BrokenProcessPool``.

Three pieces make a campaign degrade instead:

:class:`FaultPolicy`
    The knobs -- per-scenario ``timeout_seconds``, crash ``max_retries`` and
    the seeded exponential ``retry_backoff_seconds`` -- threaded from
    :class:`~repro.core.spec.ExecutionSpec` through engine and executors.
    ``None`` (the default everywhere) means the tolerance layer is off and
    every hot path is byte-for-byte the untolerant one.

:class:`GuardedWorker`
    A deadline-checked scenario runner.  Scenarios run on a disposable
    helper thread; if one exceeds the deadline the hung thread (and its
    possibly-corrupted injection context) is abandoned and the scenario is
    recorded as :data:`~repro.core.profile.InjectionOutcome.TIMEOUT`.  A
    scenario that kills its worker (a ``BaseException`` escaping the SUT,
    e.g. :class:`WorkerCrashed`) is retried with backoff on a fresh context
    and quarantined as a ``HARNESS_ERROR`` once retries are exhausted.

quarantine records
    :func:`timeout_record` / :func:`crash_record` synthesise harness-outcome
    records carrying ``metadata["quarantined"] = True``; the result store
    routes them to ``quarantine.jsonl`` next to the per-system record files
    instead of mixing them into the main stream, so a resumed run can
    re-attempt or skip them and `conferr store verify` still reports the
    store clean.

Process workers use the same :class:`GuardedWorker` *inside* each worker
process (hangs never reach the coordinator); genuine worker death is handled
at the pool level by :class:`~repro.core.executor.ProcessPoolCampaignExecutor`.
"""

from __future__ import annotations

import hashlib
import queue
import threading
import time
import traceback
from dataclasses import dataclass
from typing import Callable

from repro.core.profile import InjectionOutcome, InjectionRecord
from repro.core.templates.base import FaultScenario

__all__ = [
    "FaultPolicy",
    "GuardedWorker",
    "WorkerCrashed",
    "timeout_record",
    "crash_record",
]

#: Extra wait allowed the first time a fresh runner handles a scenario: the
#: runner builds its injection context (SUT + parse + view + baseline)
#: lazily, and that setup must not eat into the scenario's own deadline.
SETUP_GRACE_SECONDS = 10.0

#: Coordinator-side slack per scenario on top of the in-worker deadline: the
#: in-worker watchdog answers within ``timeout + epsilon``, so a block only
#: trips the coordinator's hard deadline when the worker process itself is
#: wedged (watchdog included) and must be killed from outside.
_HARD_DEADLINE_FACTOR = 2.0
_HARD_DEADLINE_SLACK = 15.0


class WorkerCrashed(BaseException):  # conferr: allow[harness/foreign-exception]
    """A simulated worker death (thread workers cannot really be killed).

    Derives from ``BaseException`` on purpose: the engine's per-scenario
    ``except Exception`` guards must *not* absorb it -- a crash is supposed
    to escape the experiment and take the worker down, exactly like
    ``os._exit`` does to a process-pool worker.  :class:`GuardedWorker`
    catches it at the worker boundary and applies the retry/quarantine
    policy.
    """


@dataclass(frozen=True)
class FaultPolicy:
    """Tolerance knobs for one campaign.

    ``timeout_seconds``
        Per-scenario deadline; ``None`` disables the watchdog (crash
        retries still apply).
    ``max_retries``
        Isolated re-attempts granted a scenario whose worker crashed
        before it is quarantined.
    ``retry_backoff_seconds``
        Base of the exponential backoff slept before each re-attempt.
    ``backoff_seed``
        Seed of the deterministic backoff jitter (campaigns stay
        reproducible down to their sleep schedule).
    ``setup_grace_seconds``
        Extra wait allowed a scenario that is first on a fresh runner (the
        runner builds its injection context lazily); tests shrink this to
        keep watchdog deadlines short.
    """

    timeout_seconds: float | None = None
    max_retries: int = 2
    retry_backoff_seconds: float = 0.05
    backoff_seed: int = 0
    setup_grace_seconds: float = SETUP_GRACE_SECONDS

    @classmethod
    def from_execution(cls, execution) -> "FaultPolicy | None":
        """The policy an :class:`~repro.core.spec.ExecutionSpec` asks for.

        Returns ``None`` -- tolerance layer off, zero overhead -- unless at
        least one of the fault-tolerance knobs is set in the spec.
        """
        if (
            execution.timeout_seconds is None
            and execution.max_retries is None
            and execution.retry_backoff_seconds is None
        ):
            return None
        kwargs: dict = {"backoff_seed": execution.seed}
        if execution.timeout_seconds is not None:
            kwargs["timeout_seconds"] = float(execution.timeout_seconds)
        if execution.max_retries is not None:
            kwargs["max_retries"] = execution.max_retries
        if execution.retry_backoff_seconds is not None:
            kwargs["retry_backoff_seconds"] = float(execution.retry_backoff_seconds)
        return cls(**kwargs)

    def backoff_delay(self, key: str, attempt: int) -> float:
        """Seconds to sleep before re-attempt ``attempt`` (1-based) of ``key``.

        Exponential in the attempt number with a deterministic jitter factor
        in [0.5, 1.5) derived from ``(backoff_seed, key, attempt)`` -- seeded,
        so two runs of the same campaign sleep the same schedule, yet two
        scenarios retrying concurrently do not stampede in lockstep.
        """
        digest = hashlib.sha256(
            f"{self.backoff_seed}:{key}:{attempt}".encode("utf-8")
        ).digest()
        jitter = 0.5 + int.from_bytes(digest[:4], "big") / 2**32
        return self.retry_backoff_seconds * (2 ** (attempt - 1)) * jitter

    def scenario_budget(self, fresh_runner: bool) -> float | None:
        """In-worker wait budget for one scenario (None: wait forever)."""
        if self.timeout_seconds is None:
            return None
        return self.timeout_seconds + (self.setup_grace_seconds if fresh_runner else 0.0)

    def block_deadline(self, scenario_count: int) -> float | None:
        """Coordinator-side hard deadline for a block of scenarios.

        Generous by design: the in-worker watchdog resolves ordinary hangs,
        so this only fires for a worker process wedged beyond the reach of
        its own watchdog thread.
        """
        if self.timeout_seconds is None:
            return None
        per_scenario = self.timeout_seconds * _HARD_DEADLINE_FACTOR + self.setup_grace_seconds
        return scenario_count * per_scenario + _HARD_DEADLINE_SLACK


# ------------------------------------------------------------ harness records
def _quarantine_metadata(scenario: FaultScenario, fault: str) -> dict:
    return {**scenario.metadata, "harness_fault": fault, "quarantined": True}


def timeout_record(
    scenario: FaultScenario, timeout_seconds: float | None, *, wedged: bool = False
) -> InjectionRecord:
    """The ``TIMEOUT`` record of a scenario the watchdog had to cancel."""
    deadline = f"{timeout_seconds:g}s" if timeout_seconds is not None else "its"
    if wedged:
        message = (
            f"worker process wedged past the {deadline} deadline "
            "(in-worker watchdog unresponsive); killed and respawned"
        )
    else:
        message = (
            f"scenario exceeded the {deadline} deadline; "
            "hung worker context abandoned and rebuilt"
        )
    return InjectionRecord(
        scenario_id=scenario.scenario_id,
        category=scenario.category,
        description=scenario.description,
        outcome=InjectionOutcome.TIMEOUT,
        messages=[message],
        metadata=_quarantine_metadata(scenario, "timeout"),
        duration_seconds=float(timeout_seconds or 0.0),
    )


def crash_record(
    scenario: FaultScenario,
    reason: str,
    *,
    retries: int,
    traceback_text: str | None = None,
) -> InjectionRecord:
    """The quarantined ``HARNESS_ERROR`` record of a worker-killing scenario."""
    messages = [
        f"worker crashed while running this scenario ({reason}); "
        f"quarantined after {retries} isolated re-attempt(s)"
    ]
    if traceback_text:
        messages.append(traceback_text.rstrip())
    return InjectionRecord(
        scenario_id=scenario.scenario_id,
        category=scenario.category,
        description=scenario.description,
        outcome=InjectionOutcome.HARNESS_ERROR,
        messages=messages,
        metadata=_quarantine_metadata(scenario, "worker-crash"),
    )


# ------------------------------------------------------------- guarded worker
class _RunnerThread:
    """Disposable scenario runner: one daemon thread owning one context.

    The owning :class:`GuardedWorker` talks to it through queues only, so a
    runner stuck inside a hung SUT call can simply be abandoned -- the
    daemon thread keeps (harmlessly) waiting, the next runner starts from a
    freshly built context, and the stale result, if it ever arrives, lands
    in an outbox nobody reads.
    """

    def __init__(self, build_context: Callable[[], object]):
        self.inbox: queue.SimpleQueue = queue.SimpleQueue()
        self.outbox: queue.SimpleQueue = queue.SimpleQueue()
        self.thread = threading.Thread(
            target=self._loop,
            args=(build_context,),
            name="conferr-guarded-runner",
            daemon=True,
        )
        self.thread.start()

    def _loop(self, build_context: Callable[[], object]) -> None:
        try:
            context = build_context()
        except BaseException as exc:  # noqa: BLE001 - reported to the guard
            task = self.inbox.get()
            if task is not None:
                self.outbox.put((task[0], "error", exc, traceback.format_exc()))
            return
        while True:
            task = self.inbox.get()
            if task is None:
                return
            token, scenario = task
            try:
                record = context.run(scenario)
            except Exception as exc:  # harness bug: hand back for re-raise
                self.outbox.put((token, "error", exc, traceback.format_exc()))
            except BaseException as exc:  # noqa: BLE001 - simulated worker death
                self.outbox.put((token, "crash", exc, traceback.format_exc()))
                return
            else:
                self.outbox.put((token, "ok", record, None))


class GuardedWorker:
    """Deadline-checked, crash-isolating wrapper around a worker context.

    Drop-in for :class:`~repro.core.executor.WorkerContext` (same ``run``
    signature) wherever a :class:`FaultPolicy` is active: the serial stream,
    each thread-pool worker, and the inside of every process-pool worker.

    ``run`` never lets a fault escape as an exception unless it is a genuine
    harness bug: hangs come back as ``TIMEOUT`` records, worker-killing
    scenarios as quarantined ``HARNESS_ERROR`` records once their isolated
    re-attempts (with seeded exponential backoff) are spent.
    """

    def __init__(self, build_context: Callable[[], object], policy: FaultPolicy):
        self.build_context = build_context
        self.policy = policy
        self._runner: _RunnerThread | None = None
        self._fresh = True
        self._token = 0

    def _ensure_runner(self) -> _RunnerThread:
        if self._runner is None:
            self._runner = _RunnerThread(self.build_context)
            self._fresh = True
        return self._runner

    def run(self, scenario: FaultScenario) -> InjectionRecord:
        """Run one scenario under the policy; always returns a record."""
        attempts = 0
        while True:
            runner = self._ensure_runner()
            self._token += 1
            runner.inbox.put((self._token, scenario))
            budget = self.policy.scenario_budget(self._fresh)
            try:
                token, status, payload, traceback_text = runner.outbox.get(timeout=budget)
            except queue.Empty:
                # Hung: abandon the runner (daemon thread + context leak by
                # design -- killing a thread is not possible) and move on.
                self._runner = None
                return timeout_record(scenario, self.policy.timeout_seconds)
            assert token == self._token  # runners are never reused after abandon
            self._fresh = False
            if status == "ok":
                return payload
            if status == "error":
                # An exception escaped the engine's own guards: a harness
                # bug, not an injected fault.  The context may be mid-
                # mutation, so drop it, and re-raise with the real site.
                self._runner = None
                raise payload
            # status == "crash": the scenario killed its worker
            self._runner = None
            attempts += 1
            if attempts > self.policy.max_retries:
                return crash_record(
                    scenario,
                    f"{type(payload).__name__}: {payload}",
                    retries=self.policy.max_retries,
                    traceback_text=traceback_text,
                )
            time.sleep(self.policy.backoff_delay(scenario.scenario_id, attempts))

    def close(self) -> None:
        """Let the current runner thread (if any) exit cleanly."""
        runner, self._runner = self._runner, None
        if runner is not None:
            runner.inbox.put(None)
