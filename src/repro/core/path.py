"""A small XPath-like query language over :class:`~repro.core.infoset.ConfigNode` trees.

The paper specifies template targets with XPath queries over the XML infoset
representation (Section 3.3).  This module implements the subset of XPath
that the templates and plugins need, natively over :class:`ConfigNode`:

* ``/file/section/directive``     -- absolute child steps (matched on ``kind``)
* ``//directive``                 -- descendant-or-self steps
* ``*``                           -- wildcard kind
* ``[@name='Listen']``            -- predicate on the node name
* ``[@value='80']``               -- predicate on the node value
* ``[@some-attr='x']``            -- predicate on an ``attrs`` entry
* ``[@name]``                     -- attribute-presence predicate
* ``[3]``                         -- 1-based positional predicate
* ``section/directive``           -- relative paths (evaluated from a context node)

Example
-------
>>> from repro.core.infoset import ConfigNode
>>> root = ConfigNode("file", children=[
...     ConfigNode("section", "mysqld", children=[
...         ConfigNode("directive", "port", "3306"),
...         ConfigNode("directive", "datadir", "/var/lib/mysql"),
...     ]),
... ])
>>> [n.name for n in select(root, "//directive[@name='port']")]
['port']
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.core.infoset import ConfigNode
from repro.errors import PathSyntaxError

__all__ = ["select", "select_one", "matches", "parse_path", "PathExpr"]


# --------------------------------------------------------------------------- model
@dataclass(frozen=True)
class Predicate:
    """One ``[...]`` filter attached to a path step."""

    kind: str  # "attr" | "position"
    key: str | None = None
    value: str | None = None
    position: int | None = None

    def evaluate(self, node: ConfigNode, position: int) -> bool:
        """Return True when ``node`` (at 1-based ``position``) satisfies the predicate."""
        if self.kind == "position":
            return position == self.position
        assert self.key is not None
        actual = _node_attribute(node, self.key)
        if self.value is None:
            return actual is not None
        return actual is not None and str(actual) == self.value


@dataclass(frozen=True)
class Step:
    """One location step: an axis, a node test and zero or more predicates."""

    axis: str  # "child" | "descendant"
    node_test: str  # a kind name or "*"
    predicates: tuple[Predicate, ...] = field(default_factory=tuple)

    def candidates(self, node: ConfigNode) -> list[ConfigNode]:
        """Nodes reachable from ``node`` along this step's axis."""
        if self.axis == "child":
            pool = list(node.children)
        else:  # descendant-or-self applied to children, i.e. all descendants
            pool = list(node.descendants())
        return [n for n in pool if self.node_test == "*" or n.kind == self.node_test]

    def apply(self, node: ConfigNode) -> list[ConfigNode]:
        """Evaluate the step from ``node`` and return matching nodes in order."""
        matched = self.candidates(node)
        for predicate in self.predicates:
            matched = [
                n for position, n in enumerate(matched, start=1) if predicate.evaluate(n, position)
            ]
        return matched


@dataclass(frozen=True)
class PathExpr:
    """A parsed path expression."""

    steps: tuple[Step, ...]
    absolute: bool
    text: str

    def select(self, root: ConfigNode) -> list[ConfigNode]:
        """Return all nodes matched by this expression, starting at ``root``.

        For absolute expressions the first step is evaluated against ``root``
        itself (so ``/file/...`` requires the root to have kind ``file``);
        relative expressions start at ``root``'s children.
        """
        if self.absolute and self.steps:
            first, *rest = self.steps
            if first.axis == "child":
                if first.node_test not in ("*", root.kind):
                    return []
                current = _apply_predicates(first.predicates, [root])
            else:
                pool = [n for n in root.walk() if first.node_test in ("*", n.kind)]
                current = _apply_predicates(first.predicates, pool)
            steps = rest
        else:
            current = [root]
            steps = list(self.steps)

        for step in steps:
            next_nodes: list[ConfigNode] = []
            seen: set[int] = set()
            for node in current:
                for match in step.apply(node):
                    if id(match) not in seen:
                        seen.add(id(match))
                        next_nodes.append(match)
            current = next_nodes
        return current

    def matches(self, node: ConfigNode) -> bool:
        """True when ``node`` is selected by this expression from its root."""
        root = node
        while root.parent is not None:
            root = root.parent
        return any(candidate is node for candidate in self.select(root))

    def __str__(self) -> str:
        return self.text


def _apply_predicates(predicates: tuple[Predicate, ...], nodes: list[ConfigNode]) -> list[ConfigNode]:
    for predicate in predicates:
        nodes = [n for pos, n in enumerate(nodes, start=1) if predicate.evaluate(n, pos)]
    return nodes


def _node_attribute(node: ConfigNode, key: str):
    """Resolve ``@key`` against the built-in fields first, then ``attrs``."""
    if key == "name":
        return node.name
    if key == "value":
        return node.value
    if key == "kind":
        return node.kind
    return node.attrs.get(key)


# --------------------------------------------------------------------------- parser
_STEP_RE = re.compile(r"^(?P<test>\*|[A-Za-z_][\w.-]*)(?P<preds>(\[[^\]]*\])*)$")
_PRED_RE = re.compile(r"\[([^\]]*)\]")
_ATTR_PRED_RE = re.compile(r"^@(?P<key>[\w.-]+)\s*(=\s*(?P<quote>['\"])(?P<value>.*)(?P=quote))?$")


def parse_path(text: str) -> PathExpr:
    """Parse ``text`` into a :class:`PathExpr`.

    Raises :class:`~repro.errors.PathSyntaxError` on malformed input.
    """
    if not isinstance(text, str) or not text.strip():
        raise PathSyntaxError("empty path expression")
    original = text
    text = text.strip()

    absolute = text.startswith("/")
    steps: list[Step] = []
    index = 0
    first = True
    while index < len(text):
        axis = "child"
        if text.startswith("//", index):
            axis = "descendant"
            index += 2
        elif text.startswith("/", index):
            index += 1
        elif not first:
            raise PathSyntaxError(f"expected '/' at position {index} in {original!r}")
        first = False

        # find the end of this step: the next '/' that is not inside brackets
        depth = 0
        end = index
        while end < len(text):
            char = text[end]
            if char == "[":
                depth += 1
            elif char == "]":
                depth -= 1
            elif char == "/" and depth == 0:
                break
            end += 1
        step_text = text[index:end]
        if not step_text:
            raise PathSyntaxError(f"empty step in path {original!r}")
        steps.append(_parse_step(step_text, axis, original))
        index = end

    if not steps:
        raise PathSyntaxError(f"no steps in path {original!r}")
    return PathExpr(steps=tuple(steps), absolute=absolute, text=original)


def _parse_step(step_text: str, axis: str, original: str) -> Step:
    match = _STEP_RE.match(step_text)
    if not match:
        raise PathSyntaxError(f"malformed step {step_text!r} in path {original!r}")
    node_test = match.group("test")
    predicates: list[Predicate] = []
    for pred_text in _PRED_RE.findall(match.group("preds") or ""):
        predicates.append(_parse_predicate(pred_text.strip(), original))
    return Step(axis=axis, node_test=node_test, predicates=tuple(predicates))


def _parse_predicate(pred_text: str, original: str) -> Predicate:
    if not pred_text:
        raise PathSyntaxError(f"empty predicate in path {original!r}")
    if pred_text.isdigit():
        return Predicate(kind="position", position=int(pred_text))
    match = _ATTR_PRED_RE.match(pred_text)
    if not match:
        raise PathSyntaxError(f"malformed predicate [{pred_text}] in path {original!r}")
    return Predicate(kind="attr", key=match.group("key"), value=match.group("value"))


# --------------------------------------------------------------------------- API
def select(root: ConfigNode, path: str | PathExpr) -> list[ConfigNode]:
    """Return every node under ``root`` matched by ``path``."""
    expr = path if isinstance(path, PathExpr) else parse_path(path)
    return expr.select(root)


def select_one(root: ConfigNode, path: str | PathExpr) -> ConfigNode | None:
    """Return the first node matched by ``path`` (document order), or None."""
    results = select(root, path)
    return results[0] if results else None


def matches(node: ConfigNode, path: str | PathExpr) -> bool:
    """True when ``node`` would be selected by ``path`` evaluated from its root."""
    expr = path if isinstance(path, PathExpr) else parse_path(path)
    return expr.matches(node)
