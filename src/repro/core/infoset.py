"""Abstract configuration representation.

ConfErr models configuration files internally as *information sets*: trees of
items, each carrying a type, optional textual value and a dictionary of
properties (paper, Section 3.2).  This module provides that data model.

A :class:`ConfigNode` is a mutable tree node with

* ``kind`` -- the node type (``"file"``, ``"section"``, ``"directive"``,
  ``"line"``, ``"token"``, ``"record"``, ...),
* ``name`` -- an optional identifying name (directive name, section name),
* ``value`` -- an optional textual value,
* ``attrs`` -- arbitrary string-keyed properties used by parsers to record
  whatever is needed to faithfully re-serialise the file (separators,
  comments, original spelling, ...),
* ``children`` -- ordered child nodes.

A :class:`ConfigTree` wraps a root node together with the logical name of the
configuration file it came from, so multi-file configurations can be handled
as sets of trees (the paper injects cross-file errors, Section 3.1).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Iterator, Mapping, Optional


class CloneStats:
    """Process-wide counters of deep-copy operations.

    The copy-on-write materialization path exists to keep campaign cost
    independent of how many scenarios run; these counters let benchmarks and
    tests assert that no per-scenario full-set clone sneaks back in.

    The counters are process-local and incremented without synchronisation:
    they are only meaningful around *serial* runs in the measuring process.
    Thread workers may lose increments and process workers count in their
    own interpreter, so parallel campaigns under-report here.
    """

    __slots__ = ("set_clones", "tree_clones")

    def __init__(self) -> None:
        self.set_clones = 0
        self.tree_clones = 0

    def reset(self) -> None:
        """Zero both counters."""
        self.set_clones = 0
        self.tree_clones = 0

    def snapshot(self) -> tuple[int, int]:
        """Current ``(set_clones, tree_clones)`` pair."""
        return (self.set_clones, self.tree_clones)


#: Global clone counters; benchmarks reset and read them around hot loops.
CLONE_STATS = CloneStats()


class ConfigNode:
    """One information item in a configuration tree."""

    __slots__ = ("kind", "name", "value", "attrs", "children", "parent")

    def __init__(
        self,
        kind: str,
        name: str | None = None,
        value: str | None = None,
        attrs: Mapping[str, Any] | None = None,
        children: Iterable["ConfigNode"] | None = None,
    ):
        self.kind = kind
        self.name = name
        self.value = value
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[ConfigNode] = []
        self.parent: ConfigNode | None = None
        if children:
            for child in children:
                self.append(child)

    # ------------------------------------------------------------------ tree
    def append(self, child: "ConfigNode") -> "ConfigNode":
        """Append ``child`` as the last child and return it."""
        child.parent = self
        self.children.append(child)
        return child

    def insert(self, index: int, child: "ConfigNode") -> "ConfigNode":
        """Insert ``child`` at position ``index`` and return it."""
        child.parent = self
        self.children.insert(index, child)
        return child

    def remove(self, child: "ConfigNode") -> "ConfigNode":
        """Remove ``child`` from this node's children and return it."""
        self.children.remove(child)
        child.parent = None
        return child

    def detach(self) -> "ConfigNode":
        """Remove this node from its parent (no-op for roots) and return it."""
        if self.parent is not None:
            self.parent.remove(self)
        return self

    def index_in_parent(self) -> int:
        """Position of this node among its siblings.

        Raises ``ValueError`` for root nodes.
        """
        if self.parent is None:
            raise ValueError("node has no parent")
        return self.parent.children.index(self)

    def replace_with(self, other: "ConfigNode") -> "ConfigNode":
        """Replace this node with ``other`` in the parent's child list."""
        if self.parent is None:
            raise ValueError("cannot replace a root node")
        parent = self.parent
        idx = self.index_in_parent()
        parent.children[idx] = other
        other.parent = parent
        self.parent = None
        return other

    # ------------------------------------------------------------- traversal
    def walk(self) -> Iterator["ConfigNode"]:
        """Yield this node and all descendants in document order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def walk_with_paths(
        self, prefix: tuple[int, ...] = ()
    ) -> Iterator[tuple["ConfigNode", tuple[int, ...]]]:
        """Yield ``(node, index_path)`` pairs in document order.

        The index path is the sequence of child indices from this node down to
        the yielded node (this node itself has path ``prefix``).  Computing
        paths during the walk is O(total nodes); deriving them per node with
        :meth:`index_in_parent` would cost O(depth x sibling count) each.
        """
        yield self, prefix
        for index, child in enumerate(self.children):
            yield from child.walk_with_paths(prefix + (index,))

    def descendants(self) -> Iterator["ConfigNode"]:
        """Yield all descendants (excluding this node) in document order."""
        for child in self.children:
            yield from child.walk()

    def ancestors(self) -> Iterator["ConfigNode"]:
        """Yield the parent chain from the immediate parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def find_all(self, predicate: Callable[["ConfigNode"], bool]) -> list["ConfigNode"]:
        """Return every node in this subtree matching ``predicate``."""
        return [node for node in self.walk() if predicate(node)]

    def find_first(self, predicate: Callable[["ConfigNode"], bool]) -> Optional["ConfigNode"]:
        """Return the first node (document order) matching ``predicate``."""
        for node in self.walk():
            if predicate(node):
                return node
        return None

    def children_of_kind(self, kind: str) -> list["ConfigNode"]:
        """Return the direct children whose ``kind`` equals ``kind``."""
        return [child for child in self.children if child.kind == kind]

    def child_named(self, name: str, kind: str | None = None) -> Optional["ConfigNode"]:
        """Return the first direct child with the given name (and kind)."""
        for child in self.children:
            if child.name == name and (kind is None or child.kind == kind):
                return child
        return None

    def path_from_root(self) -> list["ConfigNode"]:
        """Return the chain of nodes from the root down to (including) self."""
        chain = list(self.ancestors())
        chain.reverse()
        chain.append(self)
        return chain

    def depth(self) -> int:
        """Distance from the root (a root has depth 0)."""
        return sum(1 for _ in self.ancestors())

    # ----------------------------------------------------------------- value
    def get(self, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` or ``default``."""
        return self.attrs.get(key, default)

    def set(self, key: str, value: Any) -> "ConfigNode":
        """Set attribute ``key`` and return self (chainable)."""
        self.attrs[key] = value
        return self

    # ------------------------------------------------------------------ copy
    def clone(self) -> "ConfigNode":
        """Deep-copy this subtree (parent pointer of the copy is ``None``)."""
        copy = ConfigNode(self.kind, self.name, self.value, dict(self.attrs))
        for child in self.children:
            copy.append(child.clone())
        return copy

    # ------------------------------------------------------------ comparison
    def structurally_equal(self, other: "ConfigNode") -> bool:
        """Deep structural equality (kind, name, value, attrs and children)."""
        if not isinstance(other, ConfigNode):
            return False
        if (self.kind, self.name, self.value) != (other.kind, other.name, other.value):
            return False
        if self.attrs != other.attrs:
            return False
        if len(self.children) != len(other.children):
            return False
        return all(a.structurally_equal(b) for a, b in zip(self.children, other.children))

    # --------------------------------------------------------------- display
    def describe(self) -> str:
        """Short one-line human description of this node."""
        parts = [self.kind]
        if self.name is not None:
            parts.append(repr(self.name))
        if self.value is not None:
            parts.append(f"= {self.value!r}")
        return " ".join(parts)

    def pretty(self, indent: int = 0) -> str:
        """Multi-line indented dump of the subtree (for debugging/reports)."""
        lines = ["  " * indent + self.describe()]
        for child in self.children:
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConfigNode({self.describe()}, children={len(self.children)})"


class ConfigTree:
    """A parsed configuration file: a root :class:`ConfigNode` plus metadata.

    Parameters
    ----------
    name:
        Logical file name (e.g. ``"my.cnf"``); used to match trees to
        serialisers and to report where an error was injected.
    root:
        Root node of the tree.  By convention the root has ``kind == "file"``.
    dialect:
        Identifier of the parser that produced the tree (``"ini"``,
        ``"apache"``, ``"pgconf"``, ...); serialisation uses it to find the
        matching serialiser.
    """

    def __init__(self, name: str, root: ConfigNode, dialect: str = "generic"):
        self.name = name
        self.root = root
        self.dialect = dialect

    def clone(self) -> "ConfigTree":
        """Deep copy of the tree (used before every mutation)."""
        CLONE_STATS.tree_clones += 1
        return ConfigTree(self.name, self.root.clone(), self.dialect)

    def walk(self) -> Iterator[ConfigNode]:
        """Iterate over every node in document order."""
        return self.root.walk()

    def find_all(self, predicate: Callable[[ConfigNode], bool]) -> list[ConfigNode]:
        """Return all nodes matching ``predicate``."""
        return self.root.find_all(predicate)

    def structurally_equal(self, other: "ConfigTree") -> bool:
        """Deep equality of name, dialect and tree content."""
        return (
            isinstance(other, ConfigTree)
            and self.name == other.name
            and self.dialect == other.dialect
            and self.root.structurally_equal(other.root)
        )

    def node_count(self) -> int:
        """Total number of nodes in the tree."""
        return sum(1 for _ in self.walk())

    def pretty(self) -> str:
        """Indented dump of the whole tree."""
        return f"<{self.name} ({self.dialect})>\n" + self.root.pretty(1)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConfigTree({self.name!r}, dialect={self.dialect!r}, nodes={self.node_count()})"


class ConfigSet:
    """An ordered collection of :class:`ConfigTree` objects.

    ConfErr mutates *sets* of configuration files so that cross-file errors
    can be injected (paper, Section 3.1).  A ``ConfigSet`` behaves like an
    ordered mapping from file name to tree.
    """

    def __init__(self, trees: Iterable[ConfigTree] | None = None):
        self._trees: dict[str, ConfigTree] = {}
        for tree in trees or []:
            self.add(tree)

    def add(self, tree: ConfigTree) -> ConfigTree:
        """Add (or replace) a tree, keyed by its file name."""
        self._trees[tree.name] = tree
        return tree

    def get(self, name: str) -> ConfigTree:
        """Return the tree for ``name`` (KeyError if absent)."""
        return self._trees[name]

    def __contains__(self, name: str) -> bool:
        return name in self._trees

    def __iter__(self) -> Iterator[ConfigTree]:
        return iter(self._trees.values())

    def __len__(self) -> int:
        return len(self._trees)

    def names(self) -> list[str]:
        """File names in insertion order."""
        return list(self._trees)

    def clone(self) -> "ConfigSet":
        """Deep copy of every tree in the set."""
        CLONE_STATS.set_clones += 1
        return ConfigSet(tree.clone() for tree in self)

    def structurally_equal(self, other: "ConfigSet") -> bool:
        """Deep equality over all member trees."""
        if not isinstance(other, ConfigSet) or self.names() != other.names():
            return False
        return all(self.get(n).structurally_equal(other.get(n)) for n in self.names())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConfigSet({self.names()})"
