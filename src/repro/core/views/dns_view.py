"""DNS record view: a system-independent representation of published records.

The semantic-errors case study (paper Section 5.4) defines faults on "an
abstract representation that shows the DNS records published by each
server"; simple transformations map each server's configuration files into
this representation and back.  The reverse transformation is where format
expressiveness matters: djbdns' combined ``=`` directive defines an A record
*and* its PTR at once, so a record set in which one of the two has been
removed or made inconsistent **cannot** be expressed and the fault is
reported as impossible to inject (Table 3, entries "N/A").

View shape
----------
A single view tree named ``dns-records`` whose root (kind ``records``)
contains one ``dns-record`` node per published record:

* ``name``  -- canonical owner name,
* ``value`` -- primary datum (address, target name, text),
* ``attrs['rtype']``    -- record type,
* ``attrs['priority']`` -- MX priority (when applicable),
* ``attrs['source_file']`` / ``attrs['combined_group']`` /
  ``attrs['combined_role']`` -- provenance used by the reverse transform.
"""

from __future__ import annotations

from repro.core.infoset import ConfigNode, ConfigSet, ConfigTree
from repro.core.views.base import View
from repro.dns.names import is_subdomain_of, normalize_name, reverse_pointer_name
from repro.errors import SerializationError, TransformError

__all__ = ["DnsRecordView", "VIEW_TREE_NAME"]

VIEW_TREE_NAME = "dns-records"

#: Numeric types used for the generic (``:``) tinydns lines.
_GENERIC_TYPE_NUMBERS = {"HINFO": 13, "RP": 17, "TXT": 16}
_GENERIC_TYPE_NAMES = {str(number): name for name, number in _GENERIC_TYPE_NUMBERS.items()}


def make_record_node(
    name: str,
    rtype: str,
    value: str,
    priority: int | None = None,
    ttl: str | None = None,
    **extra,
) -> ConfigNode:
    """Build a ``dns-record`` view node (used by plugins to add new records)."""
    attrs = {"rtype": rtype.upper()}
    if priority is not None:
        attrs["priority"] = priority
    if ttl is not None:
        attrs["ttl"] = ttl
    attrs.update(extra)
    return ConfigNode("dns-record", name=normalize_name(name), value=value, attrs=attrs)


class DnsRecordView(View):
    """Bidirectional mapping between zone/data files and the record view."""

    name = "dns-records"

    # ------------------------------------------------------------- transform
    def transform(self, config_set: ConfigSet) -> ConfigSet:
        """Collect the published records of every zone/data file in the set.

        Files in other dialects (e.g. BIND's ``named.conf``) publish no
        records; they are carried through unchanged by :meth:`untransform`.
        """
        root = ConfigNode("records", name=VIEW_TREE_NAME)
        for tree in config_set:
            if tree.dialect == "bindzone":
                self._transform_bind_zone(tree, root)
            elif tree.dialect == "tinydns":
                self._transform_tinydns(tree, root)
        return ConfigSet([ConfigTree(VIEW_TREE_NAME, root, dialect="view:dns-records")])

    # ---- BIND zone files ----------------------------------------------------
    def _transform_bind_zone(self, tree: ConfigTree, root: ConfigNode) -> None:
        origin = ""
        default_ttl = None
        last_owner = ""
        for node in tree.root.children:
            if node.kind == "control":
                if node.name == "ORIGIN":
                    origin = node.value or ""
                elif node.name == "TTL":
                    default_ttl = node.value
                continue
            if node.kind != "record":
                continue
            owner_text = node.name if node.name else last_owner
            last_owner = owner_text
            owner = normalize_name(owner_text, origin)
            rtype = node.get("type", "A").upper()
            rdata = node.value or ""
            attrs = {
                "rtype": rtype,
                "source_file": tree.name,
                "origin": normalize_name(origin) if origin else "",
                "ttl": node.get("ttl") or default_ttl,
            }
            if rtype == "MX":
                parts = rdata.split(None, 1)
                priority = int(parts[0]) if parts and parts[0].isdigit() else 0
                exchanger = normalize_name(parts[1], origin) if len(parts) > 1 else ""
                attrs["priority"] = priority
                root.append(ConfigNode("dns-record", name=owner, value=exchanger, attrs=attrs))
            elif rtype == "SOA":
                attrs["soa_rdata"] = rdata
                primary = rdata.split()[0] if rdata.split() else ""
                root.append(
                    ConfigNode(
                        "dns-record", name=owner, value=normalize_name(primary, origin), attrs=attrs
                    )
                )
            elif rtype in ("NS", "CNAME", "PTR"):
                root.append(
                    ConfigNode(
                        "dns-record", name=owner, value=normalize_name(rdata, origin), attrs=attrs
                    )
                )
            else:  # A, AAAA, TXT, RP, HINFO, ...
                root.append(ConfigNode("dns-record", name=owner, value=rdata.strip('"'), attrs=attrs))

    # ---- tinydns data files -------------------------------------------------
    def _transform_tinydns(self, tree: ConfigTree, root: ConfigNode) -> None:
        group_counter = 0
        for node in tree.root.children:
            if node.kind != "record":
                continue
            prefix = node.get("prefix")
            fqdn = normalize_name(node.name or "")
            fields = [str(field) for field in node.get("fields", [])]
            group_counter += 1
            group = f"{tree.name}:{group_counter}"
            common = {"source_file": tree.name, "combined_group": group, "prefix": prefix}

            def add(rtype: str, name: str, value: str, role: str, **extra) -> None:
                attrs = {"rtype": rtype, "combined_role": role, **common, **extra}
                root.append(ConfigNode("dns-record", name=normalize_name(name), value=value, attrs=attrs))

            ip = fields[0] if len(fields) > 0 else ""
            if prefix == "=":
                add("A", fqdn, ip, "a")
                add("PTR", reverse_pointer_name(ip), fqdn, "ptr")
            elif prefix == "+":
                add("A", fqdn, ip, "a")
            elif prefix == "^":
                add("PTR", fqdn, ip, "ptr")
            elif prefix == "C":
                add("CNAME", fqdn, normalize_name(ip), "cname")
            elif prefix == "'":
                add("TXT", fqdn, ip, "txt")
            elif prefix == "@":
                exchanger = fields[1] if len(fields) > 1 else ""
                distance = fields[2] if len(fields) > 2 else "0"
                exchanger_name = normalize_name(exchanger) if "." in exchanger else normalize_name(f"{exchanger}.mx.{fqdn}")
                add("MX", fqdn, exchanger_name, "mx", priority=int(distance or 0))
                if ip:
                    add("A", exchanger_name, ip, "mx-a")
            elif prefix in (".", "&"):
                server = fields[1] if len(fields) > 1 else ""
                server_name = normalize_name(server) if "." in server else normalize_name(f"{server}.ns.{fqdn}")
                if prefix == ".":
                    add("SOA", fqdn, server_name, "soa")
                add("NS", fqdn, server_name, "ns")
                if ip:
                    add("A", server_name, ip, "ns-a")
            elif prefix == "Z":
                primary = fields[1] if len(fields) > 1 else ""
                add("SOA", fqdn, normalize_name(primary), "soa")
            elif prefix == ":":
                type_number = fields[0] if fields else ""
                rdata = fields[1] if len(fields) > 1 else ""
                rtype = _GENERIC_TYPE_NAMES.get(type_number, f"TYPE{type_number}")
                add(rtype, fqdn, rdata, "generic", generic_type=type_number)
            elif prefix == "-":
                continue  # disabled record: publishes nothing
            else:
                raise TransformError(f"unsupported tinydns selector {prefix!r} in {tree.name}")

    # ----------------------------------------------------------- untransform
    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        if VIEW_TREE_NAME not in view_set:
            raise TransformError("DNS record view tree is missing")
        records = view_set.get(VIEW_TREE_NAME).root.children_of_kind("dns-record")
        dialects = {tree.dialect for tree in original}
        result_trees: list[ConfigTree] = []
        for tree in original:
            if tree.dialect == "bindzone":
                result_trees.append(self._rebuild_bind_zone(tree, records))
            elif tree.dialect == "tinydns":
                result_trees.append(self._rebuild_tinydns(tree, records))
            else:
                # non-record files (named.conf, ...) are untouched by record mutations
                result_trees.append(tree.clone())
        self._check_all_records_placed(records, original, dialects)
        return ConfigSet(result_trees)

    # ---- BIND rebuild -------------------------------------------------------
    @staticmethod
    def _zone_origin(tree: ConfigTree) -> str:
        for node in tree.root.children_of_kind("control"):
            if node.name == "ORIGIN":
                return normalize_name(node.value or "")
        soa_owners = [
            normalize_name(node.name or "")
            for node in tree.root.children_of_kind("record")
            if node.get("type") == "SOA"
        ]
        return soa_owners[0] if soa_owners else ""

    def _rebuild_bind_zone(self, tree: ConfigTree, records: list[ConfigNode]) -> ConfigTree:
        origin = self._zone_origin(tree)
        new_root = ConfigNode("file", name=tree.name, attrs=dict(tree.root.attrs))
        for node in tree.root.children:
            if node.kind in ("control", "comment", "blank"):
                new_root.append(node.clone())
        for record in records:
            if not self._record_belongs_to_zone(record, tree.name, origin):
                continue
            new_root.append(self._bind_record_node(record, origin))
        return ConfigTree(tree.name, new_root, dialect="bindzone")

    @staticmethod
    def _record_belongs_to_zone(record: ConfigNode, file_name: str, origin: str) -> bool:
        source = record.get("source_file")
        if source is not None:
            return source == file_name
        return bool(origin) and is_subdomain_of(record.name or "", origin)

    @staticmethod
    def _relative_owner(owner: str, origin: str) -> str:
        owner_norm = normalize_name(owner)
        if origin and owner_norm == origin:
            return "@"
        if origin and owner_norm.endswith("." + origin):
            return owner_norm[: -(len(origin) + 1)]
        return owner_norm + "."

    def _bind_record_node(self, record: ConfigNode, origin: str) -> ConfigNode:
        rtype = record.get("rtype", "A").upper()
        owner = self._relative_owner(record.name or "", origin)
        if rtype == "MX":
            rdata = f"{record.get('priority', 0)} {normalize_name(record.value or '')}."
        elif rtype == "SOA" and record.get("soa_rdata"):
            rdata = record.get("soa_rdata")
        elif rtype in ("NS", "CNAME", "PTR", "SOA"):
            rdata = f"{normalize_name(record.value or '')}."
        elif rtype in ("TXT", "RP", "HINFO"):
            value = record.value or ""
            rdata = f'"{value}"' if rtype == "TXT" and " " in value and not value.startswith('"') else value
        else:
            rdata = record.value or ""
        attrs = {"type": rtype, "ttl": record.get("ttl"), "class": "IN", "inline_comment": ""}
        return ConfigNode("record", name=owner, value=rdata, attrs=attrs)

    # ---- tinydns rebuild ----------------------------------------------------
    def _rebuild_tinydns(self, tree: ConfigTree, records: list[ConfigNode]) -> ConfigTree:
        new_root = ConfigNode("file", name=tree.name, attrs=dict(tree.root.attrs))
        for node in tree.root.children:
            if node.kind in ("comment", "blank"):
                new_root.append(node.clone())

        mine = [
            record
            for record in records
            if record.get("source_file") in (tree.name, None)
        ]
        grouped: dict[str, list[ConfigNode]] = {}
        singles: list[ConfigNode] = []
        for record in mine:
            group = record.get("combined_group")
            if group is None:
                singles.append(record)
            else:
                grouped.setdefault(group, []).append(record)

        for group_id, members in grouped.items():
            new_root.append(self._rebuild_tinydns_group(group_id, members))
        for record in singles:
            new_root.append(self._tinydns_single_line(record))
        return ConfigTree(tree.name, new_root, dialect="tinydns")

    def _rebuild_tinydns_group(self, group_id: str, members: list[ConfigNode]) -> ConfigNode:
        prefix = members[0].get("prefix")
        by_role: dict[str, list[ConfigNode]] = {}
        for member in members:
            by_role.setdefault(member.get("combined_role", ""), []).append(member)

        def only(role: str) -> ConfigNode | None:
            nodes = by_role.get(role, [])
            return nodes[0] if len(nodes) == 1 else None

        if prefix == "=":
            a_record = only("a")
            ptr_record = only("ptr")
            if a_record is None or ptr_record is None:
                raise SerializationError(
                    f"tinydns '=' line {group_id}: the A and PTR records it defines can only "
                    "be expressed together; the mutated record set separates them"
                )
            expected_ptr_owner = reverse_pointer_name(a_record.value or "0.0.0.0") \
                if _looks_like_ip(a_record.value) else None
            if (
                expected_ptr_owner is None
                or normalize_name(ptr_record.name or "") != expected_ptr_owner
                or normalize_name(ptr_record.value or "") != normalize_name(a_record.name or "")
            ):
                raise SerializationError(
                    f"tinydns '=' line {group_id}: mutated A/PTR pair is no longer consistent "
                    "and cannot be expressed by a single '=' directive"
                )
            return _tinydns_line("=", a_record.name, [a_record.value, a_record.get("ttl")])

        if prefix == "@":
            mx_record = only("mx")
            if mx_record is None:
                raise SerializationError(
                    f"tinydns '@' line {group_id}: the MX record it defines has been removed or duplicated"
                )
            address = only("mx-a")
            ip = address.value if address is not None else ""
            return _tinydns_line(
                "@",
                mx_record.name,
                [ip, mx_record.value, str(mx_record.get("priority", 0)), mx_record.get("ttl")],
            )

        if prefix in (".", "&"):
            ns_record = only("ns")
            if ns_record is None:
                raise SerializationError(
                    f"tinydns '{prefix}' line {group_id}: the NS record it defines has been removed or duplicated"
                )
            address = only("ns-a")
            ip = address.value if address is not None else ""
            return _tinydns_line(prefix, ns_record.name, [ip, ns_record.value, ns_record.get("ttl")])

        # single-record selectors (+ ^ C ' Z :) keep their shape
        return self._tinydns_single_line(members[0])

    def _tinydns_single_line(self, record: ConfigNode) -> ConfigNode:
        rtype = record.get("rtype", "A").upper()
        name = record.name or ""
        value = record.value or ""
        ttl = record.get("ttl")
        if rtype == "A":
            return _tinydns_line("+", name, [value, ttl])
        if rtype == "PTR":
            return _tinydns_line("^", name, [value, ttl])
        if rtype == "CNAME":
            return _tinydns_line("C", name, [value, ttl])
        if rtype == "TXT":
            return _tinydns_line("'", name, [value, ttl])
        if rtype == "MX":
            return _tinydns_line("@", name, ["", value, str(record.get("priority", 0)), ttl])
        if rtype == "NS":
            return _tinydns_line("&", name, ["", value, ttl])
        if rtype == "SOA":
            return _tinydns_line("Z", name, [value, ttl])
        generic_number = record.get("generic_type") or _GENERIC_TYPE_NUMBERS.get(rtype)
        if generic_number is not None:
            return _tinydns_line(":", name, [str(generic_number), value, ttl])
        raise SerializationError(f"tinydns data files cannot express {rtype} records")

    # ---- consistency ---------------------------------------------------------
    def _check_all_records_placed(
        self, records: list[ConfigNode], original: ConfigSet, dialects: set[str]
    ) -> None:
        if "bindzone" not in dialects:
            return
        origins = {tree.name: self._zone_origin(tree) for tree in original if tree.dialect == "bindzone"}
        for record in records:
            if record.get("source_file") in origins:
                continue
            if record.get("source_file") is None and not any(
                origin and is_subdomain_of(record.name or "", origin) for origin in origins.values()
            ):
                raise SerializationError(
                    f"record {record.name} {record.get('rtype')} does not belong to any "
                    "zone file of the original configuration"
                )


def _looks_like_ip(value: str | None) -> bool:
    if not value:
        return False
    parts = value.split(".")
    return len(parts) == 4 and all(part.isdigit() for part in parts)


def _tinydns_line(prefix: str, fqdn: str | None, fields: list) -> ConfigNode:
    cleaned = [str(field) for field in fields if field is not None]
    while cleaned and cleaned[-1] == "":
        cleaned.pop()
    return ConfigNode(
        "record",
        name=fqdn,
        value=cleaned[0] if cleaned else None,
        attrs={"prefix": prefix, "fields": cleaned},
    )
