"""Structure view: configuration files as sections containing directives.

The structural-errors plugin needs the representation shown in the paper's
Figure 2.b: directives grouped into (possibly nested) sections.  The native
trees produced by the bundled parsers already have this shape, so the
structural view is an identity mapping plus a set of helpers for finding
sections and directives regardless of the dialect (flat files such as
``postgresql.conf`` are treated as one implicit section: the file root).
"""

from __future__ import annotations

from repro.core.infoset import ConfigNode, ConfigTree
from repro.core.views.base import IdentityView

__all__ = ["StructureView"]


class StructureView(IdentityView):
    """Identity mapping with structural navigation helpers.

    Inherits transform/untransform (and the touched-tree localisation) from
    :class:`IdentityView`; only the navigation vocabulary is added here.
    """

    name = "structure"

    # ------------------------------------------------------------ navigation
    @staticmethod
    def sections(tree: ConfigTree) -> list[ConfigNode]:
        """All explicit sections of ``tree`` in document order."""
        return tree.find_all(lambda node: node.kind == "section")

    @staticmethod
    def directives(scope: ConfigTree | ConfigNode) -> list[ConfigNode]:
        """All directives under ``scope`` (a tree or a section node)."""
        root = scope.root if isinstance(scope, ConfigTree) else scope
        return root.find_all(lambda node: node.kind == "directive")

    @staticmethod
    def directive_containers(tree: ConfigTree) -> list[ConfigNode]:
        """Nodes that directly hold directives: sections, or the file root
        for flat formats with no explicit sections."""
        containers = [
            node
            for node in tree.walk()
            if node.kind in ("file", "section") and node.children_of_kind("directive")
        ]
        return containers or [tree.root]

    @staticmethod
    def directives_in(container: ConfigNode) -> list[ConfigNode]:
        """Direct directive children of a container node."""
        return container.children_of_kind("directive")
