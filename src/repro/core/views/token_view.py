"""Token view: configuration files as lines of typed tokens.

This is the representation the spelling-mistakes plugin works on
(paper Figure 2.c): each configuration entry becomes a ``line`` node whose
children are ``token`` nodes tagged with a *token type* (directive name,
directive value word, section name, ...).  The token type lets the plugin
restrict injection to a specific part of the configuration, e.g. mis-spell
directive names only (Section 4.1).

Every token records the address of the node it came from and the field it
represents, which is the complementary information the reverse transform
needs (Section 3.2).
"""

from __future__ import annotations

import re

from repro.core.infoset import ConfigNode, ConfigSet, ConfigTree
from repro.core.templates.base import SetFieldOperation
from repro.core.views.base import View
from repro.errors import TransformError
from repro.sut.incremental import NodeChange, node_at

__all__ = ["TokenView", "TOKEN_DIRECTIVE_NAME", "TOKEN_DIRECTIVE_VALUE", "TOKEN_SECTION_NAME", "TOKEN_SECTION_ARG"]

TOKEN_DIRECTIVE_NAME = "directive-name"
TOKEN_DIRECTIVE_VALUE = "directive-value"
TOKEN_SECTION_NAME = "section-name"
TOKEN_SECTION_ARG = "section-arg"

#: Node kinds that produce tokens (anything else -- comments, blanks -- is skipped).
_TOKENISABLE_KINDS = {"directive", "section", "record", "control"}

_WORD_SPLIT_RE = re.compile(r"(\s+)")


def _resolve_path(tree: ConfigTree, path: tuple[int, ...]) -> ConfigNode:
    node = tree.root
    for index in path:
        if index >= len(node.children):
            raise TransformError(f"token source path {path} no longer exists in {tree.name!r}")
        node = node.children[index]
    return node


def _split_words(value: str) -> tuple[list[str], list[str]]:
    """Split ``value`` into words and the whitespace gaps between them."""
    if value == "":
        return [], []
    parts = _WORD_SPLIT_RE.split(value)
    words = parts[0::2]
    gaps = parts[1::2]
    # A leading gap produces an empty first word; keep it so reassembly is exact.
    return words, gaps


def _join_words(words: list[str], gaps: list[str]) -> str:
    pieces: list[str] = []
    for index, word in enumerate(words):
        pieces.append(word)
        if index < len(words) - 1:
            pieces.append(gaps[index] if index < len(gaps) else " ")
    return "".join(pieces)


class TokenView(View):
    """Bidirectional mapping between system trees and token/line trees."""

    name = "tokens"

    def __init__(self, include_values: bool = True, include_names: bool = True):
        #: Whether directive/section values are tokenised.
        self.include_values = include_values
        #: Whether directive/section names are tokenised.
        self.include_names = include_names

    # ------------------------------------------------------------- transform
    def transform(self, config_set: ConfigSet) -> ConfigSet:
        view_trees = []
        for tree in config_set:
            view_root = ConfigNode("token-file", name=tree.name)
            # walk_with_paths computes every source path in one walk; deriving
            # paths per node via index_in_parent is quadratic on wide trees.
            for node, path in tree.root.walk_with_paths():
                if node.kind not in _TOKENISABLE_KINDS:
                    continue
                line = self._line_for(tree, node, path)
                if line.children:
                    view_root.append(line)
            view_trees.append(ConfigTree(tree.name, view_root, dialect="view:tokens"))
        return ConfigSet(view_trees)

    def _line_for(self, tree: ConfigTree, node: ConfigNode, path: tuple[int, ...]) -> ConfigNode:
        line = ConfigNode(
            "line",
            name=node.name,
            attrs={"source_tree": tree.name, "source_path": path, "source_kind": node.kind},
        )
        if self.include_names and node.name is not None:
            name_type = TOKEN_SECTION_NAME if node.kind == "section" else TOKEN_DIRECTIVE_NAME
            line.append(
                ConfigNode(
                    "token",
                    value=node.name,
                    attrs={
                        "token_type": name_type,
                        "source_tree": tree.name,
                        "source_path": path,
                        "field": "name",
                        "owner_name": node.name,
                    },
                )
            )
        if self.include_values and node.value is not None:
            value_type = TOKEN_SECTION_ARG if node.kind == "section" else TOKEN_DIRECTIVE_VALUE
            words, gaps = _split_words(node.value)
            line.set("value_gaps", gaps)
            for word_index, word in enumerate(words):
                line.append(
                    ConfigNode(
                        "token",
                        value=word,
                        attrs={
                            "token_type": value_type,
                            "source_tree": tree.name,
                            "source_path": path,
                            "field": "value",
                            "word_index": word_index,
                            "owner_name": node.name,
                        },
                    )
                )
        return line

    # ----------------------------------------------------------- untransform
    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        result = original.clone()
        for view_tree in view_set:
            for line in view_tree.root.children_of_kind("line"):
                self._apply_line(line, result)
        return result

    def untransform_touched(self, view_set, original, touched):
        # One view tree per system tree, same name; every line of tree X
        # sources from tree X, so a change confined to ``touched`` view trees
        # only requires rebuilding the same-named system trees.
        touched = set(touched)
        result = ConfigSet()
        for name in touched:
            if name not in view_set or name not in original:
                return None
            result.add(original.get(name).clone())
        for name in touched:
            for line in view_set.get(name).root.children_of_kind("line"):
                if line.get("source_tree") not in touched:
                    # a cross-file line was grafted in; localisation is unsound
                    return None
                self._apply_line(line, result)
        return result

    def _apply_line(self, line: ConfigNode, result: ConfigSet) -> None:
        tree_name = line.get("source_tree")
        path = tuple(line.get("source_path", ()))
        if tree_name not in result:
            raise TransformError(f"token line refers to unknown file {tree_name!r}")
        target = _resolve_path(result.get(tree_name), path)
        target.name, target.value = self._line_fields(line, target.name, target.value)

    def _line_fields(
        self, line: ConfigNode, base_name: str | None, base_value: str | None
    ) -> tuple[str | None, str | None]:
        """The (name, value) a line's tokens impose on its source node.

        The single source of truth for the reverse mapping of one line:
        both the full untransform and the delta extraction go through it.
        """
        name = base_name
        value = base_value
        named = False
        words: list[str] | None = None
        for token in line.children:
            if token.kind != "token":
                continue
            token_field = token.attrs.get("field")
            if token_field == "name":
                if not named:
                    named = True
                    name = token.value
            elif token_field == "value":
                if words is None:
                    words = []
                words.append(token.value if token.value is not None else "")
        if words:
            value = _join_words(words, line.attrs.get("value_gaps") or [])
        return name, value

    # ---------------------------------------------------------------- deltas
    def scenario_changes(self, scenario, view_set, baseline_trees):
        # Token edits address (line, token) pairs; each touched line maps to
        # exactly one source node, whose post-mutation fields are rebuilt by
        # the same reassembly the full untransform uses.
        lines: dict[tuple[str, int], ConfigNode] = {}
        for operation in scenario.operations:
            if not isinstance(operation, SetFieldOperation):
                return None
            target = operation.target
            path = target.path
            if len(path) != 2 or target.tree not in view_set:
                return None
            children = view_set.get(target.tree).root.children
            line_index = path[0]
            if not 0 <= line_index < len(children):
                return None
            line = children[line_index]
            if line.kind != "line":
                return None
            lines[(target.tree, line_index)] = line
        changes: dict[tuple[str, tuple[int, ...]], NodeChange] = {}
        for line in lines.values():
            line_attrs = line.attrs
            source_tree = line_attrs.get("source_tree")
            source_path = tuple(line_attrs.get("source_path") or ())
            if source_tree is None or not source_path or source_tree not in baseline_trees:
                return None
            base = node_at(baseline_trees.get(source_tree), source_path)
            if base is None:
                return None
            name, value = self._line_fields(line, base.name, base.value)
            changes[(source_tree, source_path)] = NodeChange(
                tree=source_tree,
                path=source_path,
                kind=base.kind,
                name=name,
                value=value,
                attrs=base.attrs,
            )
        return list(changes.values())
