"""View interface: bidirectional mappings between tree representations."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.infoset import ConfigSet

__all__ = ["View", "IdentityView"]


class View(ABC):
    """A bidirectional mapping between system-specific and plugin-specific trees.

    ``transform`` produces the plugin-specific representation the error
    templates operate on; ``untransform`` maps a (possibly mutated) view back
    onto the system-specific representation so it can be serialised.  The
    original configuration set is passed to ``untransform`` because the view
    usually needs the complementary information it carries (formatting,
    comments, source addresses) to rebuild a faithful native tree.
    """

    #: Identifier used in reports.
    name: str = "view"

    @abstractmethod
    def transform(self, config_set: ConfigSet) -> ConfigSet:
        """Map the system-specific ``config_set`` to the plugin representation."""

    @abstractmethod
    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        """Map a (mutated) view back to system-specific trees.

        Raises :class:`~repro.errors.SerializationError` when the mutated view
        cannot be expressed in the original configuration format.
        """


class IdentityView(View):
    """View whose plugin representation *is* the system-specific tree.

    Useful when the native tree already has the shape a plugin needs (for
    example the structural plugin on section/directive based formats), and
    as the trivial case in tests.
    """

    name = "identity"

    def transform(self, config_set: ConfigSet) -> ConfigSet:
        return config_set.clone()

    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        return view_set.clone()
