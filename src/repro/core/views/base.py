"""View interface: bidirectional mappings between tree representations."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Iterable, Optional

from repro.core.infoset import ConfigSet
from repro.sut.incremental import NodeChange, node_at

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations only
    from repro.core.templates.base import FaultScenario

__all__ = ["View", "IdentityView"]


class View(ABC):
    """A bidirectional mapping between system-specific and plugin-specific trees.

    ``transform`` produces the plugin-specific representation the error
    templates operate on; ``untransform`` maps a (possibly mutated) view back
    onto the system-specific representation so it can be serialised.  The
    original configuration set is passed to ``untransform`` because the view
    usually needs the complementary information it carries (formatting,
    comments, source addresses) to rebuild a faithful native tree.
    """

    #: Identifier used in reports.
    name: str = "view"

    @abstractmethod
    def transform(self, config_set: ConfigSet) -> ConfigSet:
        """Map the system-specific ``config_set`` to the plugin representation."""

    @abstractmethod
    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        """Map a (mutated) view back to system-specific trees.

        Raises :class:`~repro.errors.SerializationError` when the mutated view
        cannot be expressed in the original configuration format.
        """

    def untransform_touched(
        self, view_set: ConfigSet, original: ConfigSet, touched: Iterable[str]
    ) -> Optional[ConfigSet]:
        """Reverse-map only the system trees affected by changes in ``touched``.

        ``touched`` names the view trees a scenario mutated.  Views whose
        mapping is per-tree (the view tree named X determines exactly the
        system tree named X) override this to rebuild just those trees; the
        engine then reuses cached baseline serialisations for the rest.

        Returning ``None`` (the default) means the view cannot localise the
        change -- e.g. one view tree aggregates many system files -- and the
        caller must fall back to the full :meth:`untransform`.

        Unlike :meth:`untransform`, the result is scratch: it may alias nodes
        of ``view_set``, so callers must serialise it before the mutated view
        is rolled back, and must not mutate or retain it.
        """
        return None

    def scenario_changes(
        self,
        scenario: "FaultScenario",
        view_set: ConfigSet,
        baseline_trees: ConfigSet,
    ) -> "Optional[list[NodeChange]]":
        """Reduce a scenario to the system-tree nodes it changes.

        Called with the *mutated* view (inside the scenario's apply/undo
        context) and the baseline system trees; returns detached
        :class:`~repro.sut.incremental.NodeChange` records addressing
        baseline nodes, or ``None`` when the view cannot localise the edit
        to individual nodes (structural operations, cross-file grafts,
        aggregate views).  ``None`` routes the scenario through the full
        validation pass, so a conservative answer is always sound.
        """
        return None


class IdentityView(View):
    """View whose plugin representation *is* the system-specific tree.

    Useful when the native tree already has the shape a plugin needs (for
    example the structural plugin on section/directive based formats), and
    as the trivial case in tests.
    """

    name = "identity"

    def transform(self, config_set: ConfigSet) -> ConfigSet:
        return config_set.clone()

    def untransform(self, view_set: ConfigSet, original: ConfigSet) -> ConfigSet:
        return view_set.clone()

    def untransform_touched(
        self, view_set: ConfigSet, original: ConfigSet, touched: Iterable[str]
    ) -> Optional[ConfigSet]:
        # The identity mapping can hand the mutated view trees straight to the
        # serialiser; the caller discards them before the view is rolled back.
        result = ConfigSet()
        for name in touched:
            if name not in view_set:
                return None
            result.add(view_set.get(name))
        return result

    def scenario_changes(
        self,
        scenario: "FaultScenario",
        view_set: ConfigSet,
        baseline_trees: ConfigSet,
    ) -> Optional[list[NodeChange]]:
        # Identity mapping: a view path *is* the system-tree path, so a
        # field edit maps one-to-one onto a baseline node.  Anything but a
        # field edit restructures the tree -- full pass.
        from repro.core.templates.base import SetFieldOperation  # cycle guard

        latest: dict[tuple[str, tuple[int, ...]], NodeChange] = {}
        for operation in scenario.operations:
            if not isinstance(operation, SetFieldOperation):
                return None
            address = operation.target
            path = tuple(address.path)
            if not path or address.tree not in view_set or address.tree not in baseline_trees:
                return None
            node = node_at(view_set.get(address.tree), path)
            base = node_at(baseline_trees.get(address.tree), path)
            if node is None or base is None or node.kind != base.kind:
                return None
            latest[(address.tree, path)] = NodeChange(
                tree=address.tree,
                path=path,
                kind=node.kind,
                name=node.name,
                value=node.value,
                attrs=node.attrs,
            )
        return list(latest.values())
