"""Plugin-specific views of configuration sets.

The paper's second parsing stage (Section 3.2) maps the system-specific tree
into the representation an error-generator plugin needs, and back:

* the **token view** represents files as lines of typed tokens -- the shape
  used by the spelling-mistakes plugin (Figure 2.c);
* the **structure view** represents files as sections containing directives
  -- the shape used by the structural-errors plugin (Figure 2.b);
* the **DNS record view** is a domain-specific, system-independent list of
  published DNS records -- the shape used by the semantic-errors plugin
  (Section 5.4).

Each view is bidirectional; the reverse mapping is where impossible
mutations are detected (a mutated view that cannot be expressed in the
native format raises :class:`~repro.errors.SerializationError`).
"""

from repro.core.views.base import IdentityView, View
from repro.core.views.token_view import TokenView
from repro.core.views.structure_view import StructureView
from repro.core.views.dns_view import DnsRecordView

__all__ = ["View", "IdentityView", "TokenView", "StructureView", "DnsRecordView"]
