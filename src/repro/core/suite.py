"""Campaign suites: whole evaluations as one durable, resumable run.

The paper's evaluation is inherently a *suite*: every table crosses several
systems with several error classes.  A :class:`CampaignSuite` fans M systems
x N plugins into per-system campaigns driven through the parallel executor,
derives a stable seed for every (system, plugin) cell from one suite seed,
and -- when given a :class:`~repro.core.store.ResultStore` -- appends every
record to disk as it lands so an interrupted suite can be resumed.  Appends
are live under every executor strategy: the engine's streaming merge
releases records in scenario order while workers are still injecting, so a
``--jobs 4`` run killed mid-campaign still leaves everything but the
in-flight tail on disk.

Resumption is scenario-exact: the suite regenerates each cell's scenarios
from the derived seed (generation is deterministic), skips the scenario ids
already on disk, and runs only the remainder.  A second run of a completed
suite therefore replays zero scenarios, and rendering the paper's tables
from the store is byte-identical to rendering them from the live run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

from repro.core.campaign import Campaign
from repro.core.faults import FaultPolicy
from repro.core.profile import InjectionRecord, ResilienceProfile
from repro.core.report import resilience_matrix_table, typo_resilience_table
from repro.core.spec import ExperimentSpec, derive_seed
from repro.core.store import ResultStore
from repro.errors import CampaignError, CancelledRun, StoreError
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest, split_sut

__all__ = ["CampaignSuite", "SuiteResult", "derive_seed"]


@dataclass
class SuiteResult:
    """Profiles and bookkeeping of one suite invocation.

    ``profiles`` holds the *complete* per-(system, plugin) profiles -- on a
    resumed run that includes the records reloaded from the store, not just
    the ones this invocation executed.  ``executed``/``skipped`` count, per
    system and plugin, the scenarios run now vs. skipped as already stored.
    """

    system_names: dict[str, str]
    profiles: dict[str, dict[str, ResilienceProfile]] = field(default_factory=dict)
    executed: dict[str, dict[str, int]] = field(default_factory=dict)
    skipped: dict[str, dict[str, int]] = field(default_factory=dict)

    def overall(self, system: str) -> ResilienceProfile:
        """All plugins' records for one system merged into one profile."""
        merged = ResilienceProfile(self.system_names.get(system, system))
        for profile in self.profiles.get(system, {}).values():
            merged.extend(profile.records)
        return merged

    def overall_profiles(self) -> dict[str, ResilienceProfile]:
        """Merged per-system profiles keyed by display name, in suite order."""
        return {self.system_names[key]: self.overall(key) for key in self.profiles}

    def total_executed(self) -> int:
        """Scenarios actually run by this invocation."""
        return sum(count for per_plugin in self.executed.values() for count in per_plugin.values())

    def total_skipped(self) -> int:
        """Scenarios skipped because their records were already stored."""
        return sum(count for per_plugin in self.skipped.values() for count in per_plugin.values())

    def table1(self) -> str:
        """Table 1 layout over the suite's merged per-system profiles."""
        return typo_resilience_table(self.overall_profiles())

    def profiles_by_display(self) -> dict[str, dict[str, ResilienceProfile]]:
        """Per-(system, plugin) cell profiles keyed by system display name.

        The shape the matrix renderer (and :class:`MatrixResult`) consumes;
        keeping the display-name remapping in one place is what guarantees
        the live rendering stays byte-identical to the store-backed one.
        """
        return {
            self.system_names.get(key, key): dict(per_plugin)
            for key, per_plugin in self.profiles.items()
        }

    def matrix(self) -> str:
        """The systems x plugins resilience matrix of this suite.

        Byte-identical to :func:`~repro.core.report.store_matrix_table`
        over the store the same run wrote: columns are the suite's systems
        (display names, suite order), rows its plugins (campaign order).
        """
        return resilience_matrix_table(self.profiles_by_display())

    def summary(self) -> str:
        """Multi-line human-readable overview of the whole suite."""
        lines = []
        for key in self.profiles:
            profile = self.overall(key)
            lines.append(
                f"{self.system_names.get(key, key)}: "
                f"{profile.injected_count()} injected, "
                f"{profile.detected_count()} detected "
                f"({profile.detection_rate():.1%}), "
                f"{profile.ignored_count()} ignored"
            )
        lines.append(
            f"scenarios executed: {self.total_executed()}, "
            f"skipped (already stored): {self.total_skipped()}"
        )
        return "\n".join(lines)


class CampaignSuite:
    """M systems x N plugins, one seed, one optional persistent store.

    Parameters
    ----------
    systems:
        Mapping of system key (used for store file names and seed
        derivation) to a zero-argument SUT factory.
    plugins:
        The error-generator plugins to run against every system.  Plugin
        names must be unique: they key the per-campaign records in the
        store.
    seed:
        The one suite seed; every (system, plugin) campaign runs under
        :func:`derive_seed` of it.
    layout:
        Keyboard-layout name recorded in the manifest (informational; the
        spelling plugin itself carries the layout used for generation).
    jobs / executor / block_size:
        Worker fan-out per campaign, as in :class:`~repro.core.campaign.Campaign`.
    policy:
        Optional :class:`~repro.core.faults.FaultPolicy` opting every
        campaign into the fault-tolerance layer.  Scenarios it gives up on
        land in the store's ``quarantine.jsonl``, not the record stream.
    retry_quarantined:
        What a resume does with previously quarantined scenarios: False
        (default) keeps skipping them, True drops their quarantine entries
        and re-attempts them.
    spec:
        Optional :class:`~repro.core.spec.ExperimentSpec` this suite was
        built from; when present it is embedded in the store manifest so
        resume compatibility is a structured spec diff.
    record_observer:
        Optional ``(system_key, plugin_name, record)`` callback fired once
        per record, live, in scenario order -- under every executor
        strategy (the engine's streaming merge releases records as the
        front of the scenario sequence completes).  Fires after the store
        append, so a progress line never reports a record that could still
        be lost.
    cancel_check:
        Optional zero-argument callable polled before every cell and before
        every record append; returning True raises
        :class:`~repro.errors.CancelledRun`, aborting the run cooperatively.
        Everything already released to the store stays durable (the check
        runs *before* an append, never between an append and its
        observer), so a cancelled run resumes exactly like an interrupted
        one.  This is the cancellation hook behind ``DELETE /jobs/{id}``
        and graceful service shutdown.
    """

    def __init__(
        self,
        systems: Mapping[str, Callable[[], SystemUnderTest]],
        plugins: Sequence[ErrorGeneratorPlugin],
        *,
        seed: int = 2008,
        layout: str | None = None,
        jobs: int = 1,
        executor: str | None = None,
        block_size: int | None = None,
        policy: FaultPolicy | None = None,
        incremental: bool = True,
        retry_quarantined: bool = False,
        check_baseline: bool = True,
        spec: ExperimentSpec | None = None,
        record_observer: Callable[[str, str, InjectionRecord], None] | None = None,
        cancel_check: Callable[[], bool] | None = None,
    ):
        if not systems:
            raise CampaignError("a suite needs at least one system")
        if not plugins:
            raise CampaignError("a suite needs at least one plugin")
        names = [plugin.name for plugin in plugins]
        duplicates = {name for name in names if names.count(name) > 1}
        if duplicates:
            raise CampaignError(
                f"plugin names must be unique within a suite, got duplicates: {sorted(duplicates)}"
            )
        self.systems = dict(systems)
        self.plugins = list(plugins)
        self.seed = seed
        self.layout = layout
        self.jobs = jobs
        self.executor = executor
        self.block_size = block_size
        self.policy = policy
        self.incremental = incremental
        self.retry_quarantined = retry_quarantined
        self.check_baseline = check_baseline
        self.spec = spec
        self.record_observer = record_observer
        self.cancel_check = cancel_check

    @classmethod
    def from_spec(
        cls,
        spec: ExperimentSpec,
        record_observer: Callable[[str, str, InjectionRecord], None] | None = None,
        cancel_check: Callable[[], bool] | None = None,
    ) -> "CampaignSuite":
        """Build the suite a declarative :class:`ExperimentSpec` describes.

        The spec is validated first, so a suite built here is guaranteed to
        reference registered systems and plugins with well-formed params.
        """
        spec.validate()
        return cls(
            spec.build_systems(),
            spec.build_plugins(),
            seed=spec.execution.seed,
            layout=spec.execution.layout,
            jobs=spec.execution.jobs,
            executor=spec.execution.executor,
            block_size=spec.execution.block_size,
            policy=FaultPolicy.from_execution(spec.execution),
            incremental=spec.execution.incremental,
            retry_quarantined=spec.store.retry_quarantined if spec.store else False,
            spec=spec,
            record_observer=record_observer,
            cancel_check=cancel_check,
        )

    # ----------------------------------------------------------------- manifest
    def system_names(self) -> dict[str, str]:
        """Display name of every system, by key (instantiates each factory once).

        Duplicate display names are refused: the rendered tables are keyed
        by display name, so two systems sharing one would silently collapse
        into a single column.
        """
        names = {key: split_sut(factory)[0].name for key, factory in self.systems.items()}
        seen: dict[str, str] = {}
        for key, name in names.items():
            if name in seen:
                raise CampaignError(
                    f"systems {seen[name]!r} and {key!r} share the display name {name!r}; "
                    "rendered tables would merge them -- give one a distinguishable SUT name"
                )
            seen[name] = key
        return names

    def manifest(self) -> dict[str, Any]:
        """The run manifest persisted alongside the records."""
        manifest: dict[str, Any] = {
            "kind": "suite",
            "seed": self.seed,
            "systems": self.system_names(),
            "plugins": [
                {"name": plugin.name, "params": plugin.manifest_params()}
                for plugin in self.plugins
            ],
            "layout": self.layout,
            "executor": self._executor_manifest(),
        }
        if self.spec is not None:
            manifest["spec"] = self.spec.to_dict()
        return manifest

    def _executor_manifest(self) -> dict[str, Any]:
        """Worker settings recorded in the manifest (informational only:
        profiles are executor-invariant, so resume never compares them)."""
        executor: dict[str, Any] = {"jobs": self.jobs, "executor": self.executor}
        if self.block_size is not None:
            executor["block_size"] = self.block_size
        return executor

    def campaign_seed(self, system: str, plugin_name: str) -> int:
        """Seed of one (system, plugin) campaign."""
        return derive_seed(self.seed, system, plugin_name)

    # ---------------------------------------------------------------------- run
    def run(self, store: ResultStore | None = None, resume: bool = False) -> SuiteResult:
        """Run (or resume) every campaign of the suite.

        With a ``store``, every record is appended to disk as it lands and
        the manifest is written up front.  With ``resume=True`` the store's
        manifest is checked for compatibility and scenario ids already on
        disk are skipped; without it, an existing store is refused rather
        than silently mixed into.
        """
        if resume and store is None:
            raise CampaignError("resuming needs a result store")
        manifest = self.manifest()
        if store is not None:
            if store.exists():
                if not resume:
                    raise StoreError(
                        f"result store {store.root} already exists; "
                        "resume it or point at a fresh directory"
                    )
                store.check_compatible(manifest)
            else:
                store.write_manifest(manifest)

        result = SuiteResult(system_names=dict(manifest["systems"]))
        for system_key, factory in self.systems.items():
            self._check_cancelled()
            prior: dict[str, list[InjectionRecord]] = {}
            completed: set[tuple[str, str]] = set()
            if store is not None and resume:
                for campaign_name, record in store.iter_records(system_key):
                    prior.setdefault(campaign_name, []).append(record)
                    completed.add((campaign_name, record.scenario_id))
                if self.retry_quarantined:
                    # drop the quarantine entries so the filter below lets
                    # the scenarios run again (and re-quarantine on failure)
                    store.clear_quarantine(system_key)
                else:
                    # quarantined scenarios count as handled: re-running a
                    # scenario that hung or killed its worker every resume
                    # would make the store unfinishable
                    completed |= store.quarantined_ids(system_key)

            campaign = Campaign(
                factory,
                self.plugins,
                seed=self.seed,
                check_baseline=self.check_baseline,
                jobs=self.jobs,
                executor=self.executor,
                block_size=self.block_size,
                policy=self.policy,
                incremental=self.incremental,
                seed_for=lambda plugin, _index, key=system_key: self.campaign_seed(
                    key, plugin.name
                ),
                scenario_filter=(
                    (lambda name, scenario: (name, scenario.scenario_id) not in completed)
                    if completed
                    else None
                ),
                plugin_observer=self._cell_observer(system_key, store),
            )
            campaign_result = campaign.run()

            display = result.system_names[system_key]
            merged: dict[str, ResilienceProfile] = {}
            for plugin in self.plugins:
                records = list(prior.get(plugin.name, []))
                records.extend(campaign_result.per_plugin[plugin.name].records)
                merged[plugin.name] = ResilienceProfile(display, records)
            result.profiles[system_key] = merged
            result.executed[system_key] = dict(campaign_result.executed)
            result.skipped[system_key] = dict(campaign_result.skipped)
        return result

    def _check_cancelled(self) -> None:
        if self.cancel_check is not None and self.cancel_check():
            raise CancelledRun(
                "suite run cancelled; records released so far are durable "
                "and the store can be resumed"
            )

    def _cell_observer(
        self, system_key: str, store: ResultStore | None
    ) -> Callable[[str, InjectionRecord], None] | None:
        """Per-record callback for one system's campaign: persist, then report.

        The store append runs first so that by the time a progress observer
        announces a record it is already durable on disk.  The cancellation
        check runs before the append: a record is either fully released
        (stored *and* reported) or not released at all.
        """
        if store is None and self.record_observer is None and self.cancel_check is None:
            return None

        def observe(plugin_name: str, record: InjectionRecord) -> None:
            self._check_cancelled()
            if store is not None:
                store.append(system_key, plugin_name, record)
            if self.record_observer is not None:
                self.record_observer(system_key, plugin_name, record)

        return observe
