"""Report rendering: turn resilience profiles into the paper's tables.

The helpers here format plain-text tables comparable to the paper's
evaluation artefacts:

* :func:`typo_resilience_table`       -- Table 1 (detected at startup / by
  tests / ignored, per system),
* :func:`structural_support_table`    -- Table 2 (which variation classes a
  system accepts),
* :func:`semantic_behaviour_table`    -- Table 3 (per-fault behaviour of the
  DNS servers),
* :func:`detection_distribution`      -- Figure 3 (share of directives in the
  poor/fair/good/excellent detection bins),
* :func:`render_distribution_chart`   -- an ASCII rendering of Figure 3.

The classification rules the evaluation tables apply to raw profiles live
here too (:func:`classify_structural_support`,
:func:`classify_semantic_behaviour`, :func:`per_directive_detection_rates`),
so the paper's artefacts can be rebuilt from any source of profiles --
a live run or a :class:`~repro.core.store.ResultStore` on disk
(:func:`store_typo_table` renders Table 1 straight from a store, without
re-running a single injection).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.core.profile import (
    DETECTION_BINS,
    InjectionOutcome,
    ResilienceProfile,
    detection_bin,
)

__all__ = [
    "format_table",
    "typo_resilience_table",
    "structural_support_table",
    "semantic_behaviour_table",
    "resilience_matrix_table",
    "detection_distribution",
    "render_distribution_chart",
    "classify_structural_support",
    "classify_semantic_behaviour",
    "per_directive_detection_rates",
    "store_typo_table",
    "store_matrix_profiles",
    "store_matrix_table",
    "render_store_report",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a simple aligned plain-text table."""
    table = [list(map(str, headers))] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[column]) for row in table) for column in range(len(headers))]
    lines = []
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        lines.append(line.rstrip())
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


# ----------------------------------------------------------------------- Table 1
def typo_resilience_table(profiles: Mapping[str, ResilienceProfile]) -> str:
    """Table 1: resilience to typos, one column per system."""
    systems = list(profiles)
    headers = ["", *systems]
    rows: list[list[object]] = []

    def row(label: str, values: list[str]) -> None:
        rows.append([label, *values])

    injected = {name: profiles[name].injected_count() for name in systems}
    row("# of Injected Errors", [f"{injected[name]} (100%)" if injected[name] else "0" for name in systems])

    def pct(name: str, count: int) -> str:
        total = injected[name]
        return f"{count} ({count / total:.0%})" if total else str(count)

    startup = {
        name: profiles[name].outcome_counts()[InjectionOutcome.DETECTED_AT_STARTUP] for name in systems
    }
    by_tests = {
        name: profiles[name].outcome_counts()[InjectionOutcome.DETECTED_BY_TESTS] for name in systems
    }
    ignored = {name: profiles[name].ignored_count() for name in systems}
    row("Detected by system at startup", [pct(name, startup[name]) for name in systems])
    row("Detected by functional tests", [pct(name, by_tests[name]) for name in systems])
    row("Ignored", [pct(name, ignored[name]) for name in systems])
    return format_table(headers, rows)


# ----------------------------------------------------------------------- Table 2
def structural_support_table(support: Mapping[str, Mapping[str, str]]) -> str:
    """Table 2: which structural variation classes each system supports.

    ``support`` maps system name to a mapping of variation label to
    "Yes"/"No"/"n/a".  A summary row with the percentage of satisfied
    assumptions (n/a excluded) is appended, as in the paper.
    """
    systems = list(support)
    variations: list[str] = []
    for per_system in support.values():
        for label in per_system:
            if label not in variations:
                variations.append(label)
    rows = [[label, *[support[name].get(label, "n/a") for name in systems]] for label in variations]

    def satisfied(name: str) -> str:
        values = [value for value in support[name].values() if value.lower() != "n/a"]
        if not values:
            return "n/a"
        yes = sum(1 for value in values if value.lower() == "yes")
        return f"{yes / len(values):.0%}"

    rows.append(["% of assumptions satisfied", *[satisfied(name) for name in systems]])
    return format_table(["", *systems], rows)


# ----------------------------------------------------------------------- Table 3
def semantic_behaviour_table(behaviour: Mapping[str, Mapping[str, str]]) -> str:
    """Table 3: per-fault behaviour ("found" / "not found" / "N/A") of DNS servers.

    ``behaviour`` maps fault description to a mapping of system name to the
    observed behaviour.
    """
    systems: list[str] = []
    for per_fault in behaviour.values():
        for name in per_fault:
            if name not in systems:
                systems.append(name)
    rows = [
        [index + 1, fault, *[per_fault.get(name, "N/A") for name in systems]]
        for index, (fault, per_fault) in enumerate(behaviour.items())
    ]
    return format_table(["Err#", "Description of fault", *systems], rows)


# ------------------------------------------------------------------ the matrix
def resilience_matrix_table(
    profiles: Mapping[str, Mapping[str, ResilienceProfile]],
    plugin_order: Sequence[str] | None = None,
) -> str:
    """The M-systems x N-plugins resilience matrix.

    ``profiles`` maps system display name to a mapping of plugin (campaign)
    name to that cell's profile; columns are the systems in mapping order,
    rows the plugins.  Each cell shows ``detected/injected (rate)`` --
    detection at startup and by functional tests combined -- or ``n/a``
    when the plugin injected nothing into that system (e.g. DNS semantic
    errors against a web server).  A summary row totals each system.

    The same renderer serves live suite results and result stores, which is
    what makes ``conferr matrix`` and ``conferr matrix --from-store`` of
    one run byte-identical.
    """
    systems = list(profiles)
    if plugin_order is None:
        seen: dict[str, None] = {}
        for per_plugin in profiles.values():
            for plugin in per_plugin:
                seen.setdefault(plugin, None)
        plugin_order = list(seen)

    def cell(profile: ResilienceProfile | None) -> str:
        if profile is None:
            return "n/a"
        injected = profile.injected_count()
        if injected == 0:
            return "n/a"
        detected = profile.detected_count()
        return f"{detected}/{injected} ({detected / injected:.0%})"

    rows: list[list[object]] = [
        [plugin, *[cell(profiles[system].get(plugin)) for system in systems]]
        for plugin in plugin_order
    ]

    def overall(system: str) -> str:
        merged = ResilienceProfile(system)
        for profile in profiles[system].values():
            merged.extend(profile.records)
        return cell(merged)

    rows.append(["overall", *[overall(system) for system in systems]])
    return format_table(["", *systems], rows)


def store_matrix_profiles(store) -> tuple[dict[str, dict[str, ResilienceProfile]], list[str] | None]:
    """Load a store's per-(system, plugin) matrix cells in one pass.

    Returns ``(profiles, plugin_order)``: profiles keyed by system display
    name then campaign, and the manifest's plugin row order (None for
    stores without a plugin list).  One read serves both the rendering and
    any caller that wants the cell profiles themselves.
    """
    manifest = store.read_manifest()
    plugin_order = None
    recorded = manifest.get("plugins")
    if isinstance(recorded, Sequence):
        plugin_order = [
            entry.get("name") for entry in recorded if isinstance(entry, Mapping)
        ]
    profiles: dict[str, dict[str, ResilienceProfile]] = {}
    for system, per_campaign in store.load_profiles().items():
        display = store.system_display_name(system)
        merged = profiles.setdefault(display, {})
        for campaign, profile in per_campaign.items():
            existing = merged.setdefault(campaign, ResilienceProfile(display))
            existing.extend(profile.records)
    return profiles, plugin_order


def store_matrix_table(store) -> str:
    """Render the resilience matrix from a result store, without re-running.

    ``store`` is a :class:`~repro.core.store.ResultStore` written by a
    campaign suite (``conferr suite --store`` / ``conferr matrix --store``);
    systems and plugin rows come out in manifest order, so the rendering is
    byte-identical to the live run's
    :meth:`~repro.core.suite.SuiteResult.matrix`.
    """
    profiles, plugin_order = store_matrix_profiles(store)
    return resilience_matrix_table(profiles, plugin_order=plugin_order)


# ------------------------------------------------------------- classification
def classify_structural_support(profile: ResilienceProfile) -> str:
    """Table 2 cell rule: a variation class is supported ("Yes") when every
    variant is accepted, "No" when at least one is rejected, "n/a" when no
    variants were run at all."""
    if len(profile) == 0:
        return "n/a"
    accepted = profile.records_with(InjectionOutcome.IGNORED)
    return "Yes" if len(accepted) == len(profile) else "No"


def classify_semantic_behaviour(profile: ResilienceProfile) -> str:
    """Table 3 cell rule: "found" when at least one scenario of the class was
    detected, "N/A" when nothing could be injected, "not found" otherwise."""
    if len(profile) == 0:
        return "N/A"
    counts = profile.outcome_counts()
    if counts[InjectionOutcome.DETECTED_AT_STARTUP] or counts[InjectionOutcome.DETECTED_BY_TESTS]:
        return "found"
    if profile.injected_count() == 0:
        return "N/A"
    return "not found"


def per_directive_detection_rates(profile: ResilienceProfile) -> dict[str, float]:
    """Figure 3 input: detection rate per targeted directive.

    Directives with no actually-injected scenarios are omitted, as are
    records without a ``directive`` metadata entry.
    """
    rates: dict[str, float] = {}
    for directive, sub_profile in profile.by_metadata("directive").items():
        if directive is None:
            continue
        injected = sub_profile.injected_count()
        if injected == 0:
            continue
        rates[str(directive)] = sub_profile.detected_count() / injected
    return rates


def store_typo_table(store) -> str:
    """Render the Table 1 layout from a result store, without re-running.

    ``store`` is a :class:`~repro.core.store.ResultStore`; each system's
    campaigns are merged into one profile, exactly as a live suite's
    :meth:`~repro.core.suite.SuiteResult.table1` does -- the two renderings
    of the same run are byte-identical.
    """
    return typo_resilience_table(store.merged_profiles())


def render_store_report(store) -> str:
    """The full human-readable report of a result store, as one string.

    Manifest header, one summary block per merged system profile, then the
    Table 1 layout -- exactly what ``conferr report <store-dir>`` prints
    and what the campaign service serves as a job's ``report`` artifact
    (one renderer, so the two are byte-identical).
    """
    manifest = store.read_manifest()  # raises StoreError for a plain directory
    lines = [
        f"result store: {store.root} "
        f"(kind: {manifest.get('kind')}, seed: {manifest.get('seed')})"
    ]
    for profile in store.merged_profiles().values():
        lines.append("")
        lines.append(profile.summary())
    lines.append("")
    lines.append(store_typo_table(store))
    return "\n".join(lines)


# ---------------------------------------------------------------------- Figure 3
def detection_distribution(per_directive_rates: Mapping[str, float]) -> dict[str, float]:
    """Share of directives falling into each detection bin (Figure 3).

    ``per_directive_rates`` maps a directive name to the fraction of injected
    typos the system detected for that directive.
    """
    counts = {label: 0 for label, _low, _high in DETECTION_BINS}
    for rate in per_directive_rates.values():
        counts[detection_bin(rate)] += 1
    total = len(per_directive_rates)
    return {label: (counts[label] / total if total else 0.0) for label in counts}


def render_distribution_chart(
    distributions: Mapping[str, Mapping[str, float]], width: int = 40
) -> str:
    """ASCII rendering of Figure 3: one stacked bar per system."""
    lines = []
    for system, distribution in distributions.items():
        lines.append(f"{system}")
        for label, _low, _high in DETECTION_BINS:
            share = distribution.get(label, 0.0)
            bar = "#" * round(share * width)
            lines.append(f"  {label:<9} {share:6.1%} |{bar}")
        lines.append("")
    return "\n".join(lines).rstrip()
