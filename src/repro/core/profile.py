"""Resilience profiles: the sole output of a ConfErr run.

A profile records, for every synthesised injection, the injected error and
the corresponding system behaviour (paper Section 3.1).  Outcomes follow the
paper's three-way classification -- detected at startup, detected by the
functional tests, or ignored -- extended with two bookkeeping outcomes: the
mutation could not be expressed in the native format (Section 5.4's "N/A"),
and harness errors unrelated to the injected fault.
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Iterable, Iterator

__all__ = [
    "InjectionOutcome",
    "InjectionRecord",
    "ResilienceProfile",
    "DETECTION_BINS",
    "detection_bin",
]


class InjectionOutcome(Enum):
    """How the system under test reacted to one injected configuration error."""

    #: The SUT refused to start (it most likely detected the error).
    DETECTED_AT_STARTUP = "detected-at-startup"
    #: The SUT started but the diagnosis suite failed.
    DETECTED_BY_TESTS = "detected-by-tests"
    #: The SUT started and all functional tests passed: the error was ignored.
    IGNORED = "ignored"
    #: The mutated configuration cannot be expressed in the native format.
    INJECTION_IMPOSSIBLE = "injection-impossible"
    #: The harness itself failed; the record is excluded from statistics.
    HARNESS_ERROR = "harness-error"
    #: The experiment exceeded its deadline and was cancelled by the
    #: watchdog; like harness errors, excluded from statistics.
    TIMEOUT = "timeout"

    def is_detected(self) -> bool:
        """True for the two outcomes in which the error was caught."""
        return self in (InjectionOutcome.DETECTED_AT_STARTUP, InjectionOutcome.DETECTED_BY_TESTS)

    def counts_as_injected(self) -> bool:
        """True when the scenario actually resulted in a faulty configuration."""
        return self in (
            InjectionOutcome.DETECTED_AT_STARTUP,
            InjectionOutcome.DETECTED_BY_TESTS,
            InjectionOutcome.IGNORED,
        )


@dataclass
class InjectionRecord:
    """One line of the resilience profile."""

    scenario_id: str
    category: str
    description: str
    outcome: InjectionOutcome
    messages: list[str] = field(default_factory=list)
    failed_tests: list[str] = field(default_factory=list)
    metadata: dict[str, Any] = field(default_factory=dict)
    duration_seconds: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation."""
        return {
            "scenario_id": self.scenario_id,
            "category": self.category,
            "description": self.description,
            "outcome": self.outcome.value,
            "messages": list(self.messages),
            "failed_tests": list(self.failed_tests),
            "metadata": dict(self.metadata),
            "duration_seconds": self.duration_seconds,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "InjectionRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            scenario_id=data["scenario_id"],
            category=data.get("category", ""),
            description=data.get("description", ""),
            outcome=InjectionOutcome(data["outcome"]),
            messages=list(data.get("messages", [])),
            failed_tests=list(data.get("failed_tests", [])),
            metadata=dict(data.get("metadata", {})),
            duration_seconds=float(data.get("duration_seconds", 0.0)),
        )


#: Detection-quality bins of Figure 3, as (label, inclusive lower bound, upper bound).
DETECTION_BINS = (
    ("poor", 0.0, 0.25),
    ("fair", 0.25, 0.50),
    ("good", 0.50, 0.75),
    ("excellent", 0.75, 1.0),
)


def detection_bin(rate: float) -> str:
    """Classify a detection rate into the paper's poor/fair/good/excellent bins.

    Boundaries are half-open except the last bin, which includes 1.0:
    rates in [0, 0.25) are poor, [0.25, 0.5) fair, [0.5, 0.75) good and
    [0.75, 1.0] excellent.
    """
    if not 0.0 <= rate <= 1.0:
        raise ValueError(f"detection rate must be within [0, 1], got {rate}")
    for label, lower, upper in DETECTION_BINS:
        if rate < upper or (label == "excellent" and rate <= upper):
            if rate >= lower:
                return label
    return "excellent"


class ResilienceProfile:
    """Collection of injection records for one system under test."""

    def __init__(self, system_name: str, records: Iterable[InjectionRecord] | None = None):
        self.system_name = system_name
        self._records: list[InjectionRecord] = list(records or [])

    # ------------------------------------------------------------------ build
    def add(self, record: InjectionRecord) -> InjectionRecord:
        """Append one record."""
        self._records.append(record)
        return record

    def extend(self, records: Iterable[InjectionRecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    def merge(self, other: "ResilienceProfile") -> "ResilienceProfile":
        """New profile containing this profile's records followed by ``other``'s."""
        return ResilienceProfile(self.system_name, [*self._records, *other._records])

    # ---------------------------------------------------------------- queries
    def __iter__(self) -> Iterator[InjectionRecord]:
        return iter(self._records)

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> list[InjectionRecord]:
        """All records, in injection order."""
        return list(self._records)

    def records_with(self, outcome: InjectionOutcome) -> list[InjectionRecord]:
        """Records with a specific outcome."""
        return [record for record in self._records if record.outcome is outcome]

    def outcome_counts(self) -> dict[InjectionOutcome, int]:
        """Count of records per outcome (all outcomes present, possibly zero)."""
        counter = Counter(record.outcome for record in self._records)
        return {outcome: counter.get(outcome, 0) for outcome in InjectionOutcome}

    def injected_count(self) -> int:
        """Number of scenarios actually injected (excludes impossible/harness errors)."""
        return sum(1 for record in self._records if record.outcome.counts_as_injected())

    def detected_count(self) -> int:
        """Number of injected errors the system caught (startup or tests)."""
        return sum(1 for record in self._records if record.outcome.is_detected())

    def ignored_count(self) -> int:
        """Number of injected errors that went unnoticed."""
        return sum(1 for record in self._records if record.outcome is InjectionOutcome.IGNORED)

    def detection_rate(self) -> float:
        """Fraction of injected errors that were detected (0.0 when nothing was injected)."""
        injected = self.injected_count()
        return self.detected_count() / injected if injected else 0.0

    def detection_bin(self) -> str:
        """Figure-3 style quality bin of the overall detection rate."""
        return detection_bin(self.detection_rate())

    def categories(self) -> list[str]:
        """Distinct scenario categories, in first-appearance order."""
        seen: dict[str, None] = {}
        for record in self._records:
            seen.setdefault(record.category, None)
        return list(seen)

    def by_category(self) -> dict[str, "ResilienceProfile"]:
        """Split the profile into per-category sub-profiles."""
        result: dict[str, ResilienceProfile] = {}
        for record in self._records:
            result.setdefault(record.category, ResilienceProfile(self.system_name)).add(record)
        return result

    def by_metadata(self, key: str) -> dict[Any, "ResilienceProfile"]:
        """Split the profile by a metadata value (e.g. the targeted directive)."""
        result: dict[Any, ResilienceProfile] = {}
        for record in self._records:
            result.setdefault(record.metadata.get(key), ResilienceProfile(self.system_name)).add(record)
        return result

    # ------------------------------------------------------------ serialisation
    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation of the whole profile."""
        counts = self.outcome_counts()
        return {
            "system": self.system_name,
            "total_records": len(self._records),
            "injected": self.injected_count(),
            "detection_rate": self.detection_rate(),
            "outcomes": {outcome.value: count for outcome, count in counts.items()},
            "records": [record.to_dict() for record in self._records],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialise the profile to JSON text."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "ResilienceProfile":
        """Rebuild a profile from :meth:`to_dict` output."""
        records = [InjectionRecord.from_dict(entry) for entry in data.get("records", [])]
        return cls(data.get("system", "unknown"), records)

    @classmethod
    def from_json(cls, text: str) -> "ResilienceProfile":
        """Rebuild a profile from :meth:`to_json` output."""
        return cls.from_dict(json.loads(text))

    def save(self, path: str) -> None:
        """Write the profile to ``path`` as JSON, creating parent directories.

        ``conferr run --output results/out.json`` must work on a fresh
        checkout; raising ``FileNotFoundError`` for a missing ``results/``
        would throw away a whole completed campaign.
        """
        from pathlib import Path

        target = Path(path).expanduser()
        target.parent.mkdir(parents=True, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            handle.write(self.to_json())

    @classmethod
    def load(cls, path: str) -> "ResilienceProfile":
        """Read a profile previously written with :meth:`save`."""
        with open(path, "r", encoding="utf-8") as handle:
            return cls.from_json(handle.read())

    def summary(self) -> str:
        """Multi-line human-readable summary (Table 1-style counts)."""
        counts = self.outcome_counts()
        injected = self.injected_count()
        lines = [
            f"Resilience profile for {self.system_name}",
            f"  injected errors:        {injected}",
            f"  detected at startup:    {counts[InjectionOutcome.DETECTED_AT_STARTUP]}",
            f"  detected by tests:      {counts[InjectionOutcome.DETECTED_BY_TESTS]}",
            f"  ignored:                {counts[InjectionOutcome.IGNORED]}",
            f"  impossible to inject:   {counts[InjectionOutcome.INJECTION_IMPOSSIBLE]}",
            f"  harness errors:         {counts[InjectionOutcome.HARNESS_ERROR]}",
            f"  timeouts:               {counts[InjectionOutcome.TIMEOUT]}",
            f"  detection rate:         {self.detection_rate():.1%}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResilienceProfile({self.system_name!r}, records={len(self._records)})"
