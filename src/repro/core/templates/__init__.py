"""Error templates: parameterised transformations of configuration trees.

The paper (Section 3.3) expresses error models by instantiating and composing
*templates*: simple ones that mutate nodes or subtrees selected by an XPath
query (delete, duplicate, move, modify) and complex ones that combine the
fault-scenario sets produced by other templates (union, random subset).

Templates *generate* :class:`FaultScenario` objects; a scenario is a replayable
recipe of operations that, applied to a pristine clone of the configuration
set, produces one faulty configuration.
"""

from repro.core.templates.base import (
    FaultScenario,
    NodeAddress,
    Operation,
    DeleteOperation,
    InsertOperation,
    MoveOperation,
    SetFieldOperation,
    Template,
    address_of,
    resolve_address,
)
from repro.core.templates.primitives import (
    DeleteTemplate,
    DuplicateTemplate,
    InsertTemplate,
    ModifyTemplate,
    MoveTemplate,
    SetValueTemplate,
)
from repro.core.templates.compose import (
    FilterTemplate,
    LimitTemplate,
    RandomSubsetTemplate,
    UnionTemplate,
)

__all__ = [
    "FaultScenario",
    "NodeAddress",
    "Operation",
    "DeleteOperation",
    "InsertOperation",
    "MoveOperation",
    "SetFieldOperation",
    "Template",
    "address_of",
    "resolve_address",
    "DeleteTemplate",
    "DuplicateTemplate",
    "InsertTemplate",
    "ModifyTemplate",
    "MoveTemplate",
    "SetValueTemplate",
    "FilterTemplate",
    "LimitTemplate",
    "RandomSubsetTemplate",
    "UnionTemplate",
]
