"""Complex templates that combine the scenario sets of other templates.

The paper (Section 3.3) mentions templates that take *sets of fault
scenarios* as parameters: a union template and a random-subset selector.
We also provide a deterministic limit and a predicate filter, which are
convenient when building campaign faultloads.
"""

from __future__ import annotations

import random
from typing import Callable, Sequence

from repro.core.infoset import ConfigSet
from repro.core.templates.base import FaultScenario, Template
from repro.errors import TemplateError

__all__ = ["UnionTemplate", "RandomSubsetTemplate", "LimitTemplate", "FilterTemplate"]


def _relabel(scenario: FaultScenario, prefix: str, ordinal: int) -> FaultScenario:
    """Return a copy of ``scenario`` with a namespaced, collision-free id."""
    return FaultScenario(
        scenario_id=f"{prefix}{ordinal}:{scenario.scenario_id}",
        description=scenario.description,
        category=scenario.category,
        operations=scenario.operations,
        metadata=dict(scenario.metadata),
    )


class UnionTemplate(Template):
    """Union of the scenarios produced by several templates."""

    category = "union"

    def __init__(self, templates: Sequence[Template]):
        if not templates:
            raise TemplateError("UnionTemplate requires at least one template")
        self.templates = list(templates)

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios: list[FaultScenario] = []
        for index, template in enumerate(self.templates):
            for scenario in template.generate(config_set, rng):
                scenarios.append(_relabel(scenario, "u", index))
        return scenarios


class RandomSubsetTemplate(Template):
    """Select a random subset of a given size from another template's scenarios.

    The paper uses this to bound the number of injections per fault class
    (e.g. "randomly select 10 directives per section and introduce a typo in
    each", Section 5.2).  Selection draws from the engine's seeded RNG, so
    campaigns are reproducible.
    """

    category = "random-subset"

    def __init__(self, template: Template, size: int):
        if size < 0:
            raise TemplateError("subset size must be non-negative")
        self.template = template
        self.size = size

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = self.template.generate(config_set, rng)
        if len(scenarios) <= self.size:
            return scenarios
        return rng.sample(scenarios, self.size)


class LimitTemplate(Template):
    """Keep only the first ``limit`` scenarios (deterministic truncation)."""

    category = "limit"

    def __init__(self, template: Template, limit: int):
        if limit < 0:
            raise TemplateError("limit must be non-negative")
        self.template = template
        self.limit = limit

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        return self.template.generate(config_set, rng)[: self.limit]


class FilterTemplate(Template):
    """Keep only the scenarios accepted by a predicate."""

    category = "filter"

    def __init__(self, template: Template, predicate: Callable[[FaultScenario], bool]):
        self.template = template
        self.predicate = predicate

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        return [s for s in self.template.generate(config_set, rng) if self.predicate(s)]
