"""Primitive error templates: delete, duplicate, move, insert and modify.

These correspond to the "simplest class of templates" of the paper
(Section 3.3): they take a description of the target nodes -- a path
expression in our XPath subset -- and describe one mutation per eligible
node (or per eligible node/destination pair for moves).
"""

from __future__ import annotations

import random
from abc import abstractmethod
from typing import Callable, Iterable, Sequence

from repro.core.infoset import ConfigNode, ConfigSet
from repro.core.path import PathExpr, parse_path
from repro.core.templates.base import (
    AddressIndex,
    DeleteOperation,
    FaultScenario,
    InsertOperation,
    MoveOperation,
    NodeAddress,
    SetFieldOperation,
    Template,
)
from repro.errors import TemplateError

__all__ = [
    "TargetedTemplate",
    "DeleteTemplate",
    "DuplicateTemplate",
    "MoveTemplate",
    "InsertTemplate",
    "SetValueTemplate",
    "ModifyTemplate",
]


def _compile(path: str | PathExpr) -> PathExpr:
    return path if isinstance(path, PathExpr) else parse_path(path)


def _node_label(node: ConfigNode) -> str:
    """Short label used in scenario ids and descriptions."""
    if node.name:
        return f"{node.kind}:{node.name}"
    if node.value:
        return f"{node.kind}={node.value}"
    return node.kind


class TargetedTemplate(Template):
    """Base for templates whose candidates are selected by a path expression."""

    def __init__(self, target: str | PathExpr, category: str | None = None):
        self.target = _compile(target)
        if category is not None:
            self.category = category

    def select_targets(
        self, config_set: ConfigSet, addresses: AddressIndex | None = None
    ) -> list[tuple[ConfigNode, NodeAddress]]:
        """Return every (node, address) matched by the target expression.

        Addresses come from a single-walk :class:`AddressIndex` (pass one in
        to share it across several selections on the same set).
        """
        addresses = addresses or AddressIndex(config_set)
        matches: list[tuple[ConfigNode, NodeAddress]] = []
        for tree in config_set:
            for node in self.target.select(tree.root):
                matches.append((node, addresses.address_of(node)))
        return matches


class DeleteTemplate(TargetedTemplate):
    """Omission errors: remove each matched node (directive/section/token)."""

    category = "omission"

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = []
        for ordinal, (node, address) in enumerate(self.select_targets(config_set)):
            scenarios.append(
                FaultScenario(
                    scenario_id=f"delete-{ordinal}-{_node_label(node)}",
                    description=f"omit {_node_label(node)} from {address.tree}",
                    category=self.category,
                    operations=(DeleteOperation(address),),
                    metadata={"target": str(address), "node": _node_label(node)},
                )
            )
        return scenarios


class DuplicateTemplate(TargetedTemplate):
    """Duplication errors: re-insert a copy of each matched node.

    The copy is appended to the same parent by default (modelling a stray
    copy-paste); when ``destination`` is given, the copy is inserted under
    each matching destination node instead.
    """

    category = "duplication"

    def __init__(
        self,
        target: str | PathExpr,
        destination: str | PathExpr | None = None,
        category: str | None = None,
    ):
        super().__init__(target, category)
        self.destination = _compile(destination) if destination is not None else None

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        addresses = AddressIndex(config_set)
        for node, address in self.select_targets(config_set, addresses):
            if self.destination is None:
                destinations = [(node.parent, address.parent())] if node.parent else []
            else:
                destinations = [
                    (dest, addresses.address_of(dest))
                    for tree in config_set
                    for dest in self.destination.select(tree.root)
                ]
            for dest_node, dest_address in destinations:
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"duplicate-{ordinal}-{_node_label(node)}",
                        description=(
                            f"duplicate {_node_label(node)} into "
                            f"{_node_label(dest_node)} of {dest_address.tree}"
                        ),
                        category=self.category,
                        operations=(InsertOperation(dest_address, node.clone()),),
                        metadata={
                            "target": str(address),
                            "destination": str(dest_address),
                            "node": _node_label(node),
                        },
                    )
                )
                ordinal += 1
        return scenarios


class MoveTemplate(TargetedTemplate):
    """Misplacement errors: move each matched node under a different parent.

    Destinations are selected by a second path expression; by default every
    (target, destination) pair yields one scenario, excluding the node's
    current parent and its own subtree.
    """

    category = "misplacement"

    def __init__(
        self,
        target: str | PathExpr,
        destination: str | PathExpr,
        category: str | None = None,
        include_current_parent: bool = False,
    ):
        super().__init__(target, category)
        self.destination = _compile(destination)
        self.include_current_parent = include_current_parent

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        addresses = AddressIndex(config_set)
        for node, address in self.select_targets(config_set, addresses):
            for tree in config_set:
                for dest in self.destination.select(tree.root):
                    if dest is node or any(a is node for a in dest.ancestors()):
                        continue
                    if not self.include_current_parent and dest is node.parent:
                        continue
                    dest_address = addresses.address_of(dest)
                    scenarios.append(
                        FaultScenario(
                            scenario_id=f"move-{ordinal}-{_node_label(node)}",
                            description=(
                                f"move {_node_label(node)} from {address} "
                                f"into {_node_label(dest)} ({dest_address})"
                            ),
                            category=self.category,
                            operations=(MoveOperation(address, dest_address),),
                            metadata={
                                "target": str(address),
                                "destination": str(dest_address),
                                "node": _node_label(node),
                            },
                        )
                    )
                    ordinal += 1
        return scenarios


class InsertTemplate(TargetedTemplate):
    """Foreign-content errors: insert a given node under each matched parent.

    Models the rule-based "borrowing" of a directive or section from another
    program's configuration (paper Section 2.2).
    """

    category = "foreign-insertion"

    def __init__(
        self,
        destination: str | PathExpr,
        nodes: Sequence[ConfigNode] | ConfigNode,
        category: str | None = None,
    ):
        super().__init__(destination, category)
        self.nodes = [nodes] if isinstance(nodes, ConfigNode) else list(nodes)
        if not self.nodes:
            raise TemplateError("InsertTemplate requires at least one node to insert")

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        for parent, parent_address in self.select_targets(config_set):
            for node in self.nodes:
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"insert-{ordinal}-{_node_label(node)}",
                        description=(
                            f"insert foreign {_node_label(node)} into "
                            f"{_node_label(parent)} of {parent_address.tree}"
                        ),
                        category=self.category,
                        operations=(InsertOperation(parent_address, node.clone()),),
                        metadata={
                            "destination": str(parent_address),
                            "node": _node_label(node),
                        },
                    )
                )
                ordinal += 1
        return scenarios


class ModifyTemplate(TargetedTemplate):
    """Abstract modify template (paper Section 3.3).

    Subclasses (the spelling submodels, for instance) override
    :meth:`mutations_for` to enumerate the possible replacement values of a
    node field; the base class turns each into a scenario.
    """

    category = "modification"
    #: Which field of the matched node is modified: "name", "value" or "attr:<k>".
    field_name: str = "value"

    @abstractmethod
    def mutations_for(
        self, node: ConfigNode, rng: random.Random
    ) -> Iterable[tuple[str, str]]:
        """Yield ``(mutation_label, new_field_value)`` pairs for ``node``."""

    def current_value(self, node: ConfigNode) -> str | None:
        """Current value of the modified field."""
        if self.field_name == "name":
            return node.name
        if self.field_name == "value":
            return node.value
        if self.field_name.startswith("attr:"):
            return node.attrs.get(self.field_name[len("attr:"):])
        raise TemplateError(f"unknown field {self.field_name!r}")

    def generate(self, config_set: ConfigSet, rng: random.Random) -> list[FaultScenario]:
        scenarios = []
        ordinal = 0
        for node, address in self.select_targets(config_set):
            original = self.current_value(node)
            for label, new_value in self.mutations_for(node, rng):
                scenarios.append(
                    FaultScenario(
                        scenario_id=f"modify-{ordinal}-{label}-{_node_label(node)}",
                        description=(
                            f"{label}: change {self.field_name} of {_node_label(node)} "
                            f"from {original!r} to {new_value!r}"
                        ),
                        category=self.category,
                        operations=(SetFieldOperation(address, self.field_name, new_value),),
                        metadata={
                            "target": str(address),
                            "node": _node_label(node),
                            "field": self.field_name,
                            "original": original,
                            "mutated": new_value,
                            "mutation": label,
                        },
                    )
                )
                ordinal += 1
        return scenarios


class SetValueTemplate(ModifyTemplate):
    """Concrete modify template driven by a user-supplied mutation function."""

    def __init__(
        self,
        target: str | PathExpr,
        mutator: Callable[[ConfigNode, random.Random], Iterable[tuple[str, str]]],
        field_name: str = "value",
        category: str | None = None,
    ):
        super().__init__(target, category)
        self.field_name = field_name
        self._mutator = mutator

    def mutations_for(self, node: ConfigNode, rng: random.Random) -> Iterable[tuple[str, str]]:
        return self._mutator(node, rng)
