"""Core ConfErr machinery: configuration trees, templates, views, engine.

The sub-packages mirror the stages of the ConfErr pipeline described in the
paper:

``infoset``
    The abstract tree representation of configuration files (the paper uses
    XML information sets; we provide an equivalent native model).
``path``
    An XPath-like query language used by templates to select target nodes.
``templates``
    Parameterised transformations of configuration trees (delete, duplicate,
    move, modify, ...) and combinators over sets of fault scenarios.
``views``
    Bidirectional mappings between the system-specific tree and the
    representations required by each error-generator plugin.
``engine`` / ``campaign`` / ``profile`` / ``report``
    Orchestration of injection experiments and aggregation of outcomes into
    resilience profiles.
``suite`` / ``store``
    Whole multi-system, multi-plugin evaluations as one durable run: the
    suite fans campaigns out and the store appends every record to disk so
    an interrupted suite can be resumed.
"""

from repro.core.infoset import ConfigNode, ConfigTree
from repro.core.profile import InjectionOutcome, InjectionRecord, ResilienceProfile
from repro.core.engine import InjectionEngine
from repro.core.campaign import Campaign, CampaignResult
from repro.core.executor import (
    ProcessPoolCampaignExecutor,
    SerialExecutor,
    ThreadPoolCampaignExecutor,
    available_executors,
)
from repro.core.store import ResultStore
from repro.core.suite import CampaignSuite, SuiteResult, derive_seed

__all__ = [
    "ConfigNode",
    "ConfigTree",
    "InjectionOutcome",
    "InjectionRecord",
    "ResilienceProfile",
    "InjectionEngine",
    "Campaign",
    "CampaignResult",
    "SerialExecutor",
    "ThreadPoolCampaignExecutor",
    "ProcessPoolCampaignExecutor",
    "available_executors",
    "ResultStore",
    "CampaignSuite",
    "SuiteResult",
    "derive_seed",
]
