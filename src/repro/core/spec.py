"""Declarative experiment specifications: one typed description of a run.

The paper's pitch is that injection campaigns run "without human
intervention"; an :class:`ExperimentSpec` is the data structure that makes
that true end to end.  It describes a whole systems x plugins experiment
matrix -- which systems, which error-generator plugins with which
parameters, the seed/worker/layout settings, and an optional persistent
result store -- as frozen, serializable dataclasses:

* :class:`SystemSpec` -- a registered system (``repro.registry``) plus an
  optional display label (store key / table column),
* :class:`PluginSpec` -- a registered plugin name, a JSON-native params
  dict handed to the plugin's ``from_params``, and an optional label so
  one plugin can appear twice with different parameters,
* :class:`ExecutionSpec` -- seed, worker fan-out, and the execution-level
  plugin defaults (``mutations_per_token``, ``max_scenarios_per_class``,
  ``layout``),
* :class:`StoreSpec` -- result-store directory and resume flag,
* :class:`ExperimentSpec` -- the top-level document tying them together.

Specs round-trip through plain dicts (``to_dict``/``from_dict``), JSON and
TOML; :meth:`ExperimentSpec.validate` reports the exact path of an invalid
entry (``plugins[1].params.layout: unknown layout 'qwertz-xx'``).  Result
stores embed the serialized spec in their manifest, so resume compatibility
is a structured :func:`diff_spec_dicts` rather than a field-by-field
comparison.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping

from repro.errors import SpecError

__all__ = [
    "SystemSpec",
    "PluginSpec",
    "ExecutionSpec",
    "StoreSpec",
    "ExperimentSpec",
    "derive_seed",
    "diff_spec_dicts",
    "spec_dict_to_toml",
    "validation_report",
    "validation_error_entry",
]

#: Worker strategies understood by the campaign executor.
EXECUTOR_CHOICES = ("serial", "thread", "process")

#: Execution-level defaults injected into plugins that accept them but do
#: not set them explicitly (mirrors the CLI's ``--mutations-per-token``,
#: ``--max-scenarios-per-class`` and ``--layout`` flags).
_PLUGIN_DEFAULT_KEYS = ("mutations_per_token", "max_scenarios_per_class", "layout")


def derive_seed(suite_seed: int, system: str, plugin: str) -> int:
    """Stable per-(system, plugin) seed derived from one experiment seed.

    Uses a cryptographic digest rather than Python's ``hash`` so the value
    survives interpreter restarts and ``PYTHONHASHSEED`` -- resuming a suite
    in a new process must regenerate identical scenario streams.
    """
    digest = hashlib.sha256(f"{suite_seed}:{system}:{plugin}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1  # keep it a positive 63-bit int


def _toml_loader():
    """The available TOML parser: stdlib ``tomllib`` (3.11+) or ``tomli``.

    Raises a clean :class:`SpecError` instead of a bare import traceback on
    interpreters that have neither -- JSON specs always work.
    """
    try:
        import tomllib
    except ModuleNotFoundError:  # pragma: no cover - Python 3.10 fallback
        try:
            import tomli as tomllib
        except ModuleNotFoundError:
            raise SpecError(
                "TOML specs need Python 3.11+ (stdlib tomllib) or the 'tomli' "
                "package; on this interpreter use a JSON spec instead"
            ) from None
    return tomllib


# ------------------------------------------------------------------ dict helpers
def _require_mapping(value: Any, path: str) -> Mapping[str, Any]:
    if not isinstance(value, Mapping):
        raise SpecError(f"{path}: expected a table/object, got {value!r}")
    return value

def _require_str(value: Any, path: str) -> str:
    if not isinstance(value, str) or not value:
        raise SpecError(f"{path}: expected a non-empty string, got {value!r}")
    return value


def _require_int(value: Any, path: str) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise SpecError(f"{path}: expected an integer, got {value!r}")
    return value


def _require_number(value: Any, path: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SpecError(f"{path}: expected a number, got {value!r}")
    return float(value)


def _require_bool(value: Any, path: str) -> bool:
    if not isinstance(value, bool):
        raise SpecError(f"{path}: expected true/false, got {value!r}")
    return value


def _reject_unknown_keys(data: Mapping[str, Any], known: tuple[str, ...], path: str) -> None:
    for key in data:
        if key not in known:
            where = f"{path}.{key}" if path else str(key)
            raise SpecError(f"{where}: unknown key (expected one of: {', '.join(known)})")


def _prune_nones(value: Any) -> Any:
    """Drop ``None`` values recursively (absent and ``None`` mean 'default')."""
    if isinstance(value, Mapping):
        return {key: _prune_nones(item) for key, item in value.items() if item is not None}
    if isinstance(value, (list, tuple)):
        return [_prune_nones(item) for item in value]
    return value


# ----------------------------------------------------------------------- pieces
@dataclass(frozen=True)
class SystemSpec:
    """One system of the experiment matrix.

    ``name`` is the registry name (:mod:`repro.registry`); ``label`` is the
    key used for store files and rendered table columns and defaults to the
    registry name.  Labels let a spec give a workload variant its canonical
    column name (``mysql-server-only`` shown as ``MySQL``).

    ``chaos`` (a ``[systems.chaos]`` table in TOML) wraps the system in a
    :class:`~repro.sut.chaos.ChaosSUT`, making a seeded fraction of its
    injection experiments hang, crash their worker, or raise -- the
    inject-and-observe method of the paper turned on the harness itself.
    Keys: ``hang_fraction``, ``crash_fraction``, ``error_fraction``,
    ``seed``, ``hang_seconds``.
    """

    name: str
    label: str | None = None
    chaos: Mapping[str, Any] | None = None

    def __post_init__(self) -> None:
        if self.chaos is not None:
            object.__setattr__(self, "chaos", dict(self.chaos))

    @property
    def key(self) -> str:
        """Store/table key of this system (label, falling back to name)."""
        return self.label or self.name

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.label is not None and self.label != self.name:
            data["label"] = self.label
        if self.chaos:
            data["chaos"] = dict(self.chaos)
        return data

    @classmethod
    def from_dict(cls, data: Any, path: str = "systems[?]") -> "SystemSpec":
        if isinstance(data, str):  # "mysql" shorthand for {name = "mysql"}
            return cls(name=_require_str(data, f"{path}.name"))
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("name", "label", "chaos"), path)
        label = data.get("label")
        if label is not None:
            label = _require_str(label, f"{path}.label")
        chaos = data.get("chaos")
        if chaos is not None:
            chaos = dict(_require_mapping(chaos, f"{path}.chaos"))
        return cls(
            name=_require_str(data.get("name"), f"{path}.name"), label=label, chaos=chaos
        )

    def validate_chaos(self, path: str) -> None:
        """Typed validation of the chaos table (fractions, seed, hang time)."""
        if self.chaos is None:
            return
        known = ("hang_fraction", "crash_fraction", "error_fraction", "seed", "hang_seconds")
        _reject_unknown_keys(self.chaos, known, path)
        total = 0.0
        for key in ("hang_fraction", "crash_fraction", "error_fraction"):
            if key in self.chaos:
                value = _require_number(self.chaos[key], f"{path}.{key}")
                if not 0.0 <= value <= 1.0:
                    raise SpecError(f"{path}.{key}: must be within [0, 1], got {value}")
                total += value
        if total > 1.0:
            raise SpecError(f"{path}: fault fractions must sum to at most 1, got {total}")
        if "seed" in self.chaos:
            _require_int(self.chaos["seed"], f"{path}.seed")
        if "hang_seconds" in self.chaos:
            value = _require_number(self.chaos["hang_seconds"], f"{path}.hang_seconds")
            if value <= 0:
                raise SpecError(f"{path}.hang_seconds: must be positive, got {value}")


@dataclass(frozen=True)
class PluginSpec:
    """One error-generator plugin of the matrix, with its typed params.

    ``params`` is handed to the plugin class's ``from_params`` (the inverse
    of ``manifest_params``), so construction never touches the CLI.
    ``label`` keys the plugin's campaign in results and stores; it defaults
    to the plugin name and exists so one plugin can appear several times
    with different parameters (Table 1 runs ``spelling`` twice).
    """

    name: str
    params: Mapping[str, Any] = field(default_factory=dict)
    label: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", dict(self.params))

    @property
    def key(self) -> str:
        """Campaign key of this plugin (label, falling back to name)."""
        return self.label or self.name

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"name": self.name}
        if self.label is not None and self.label != self.name:
            data["label"] = self.label
        params = _prune_nones(self.params)
        if params:
            data["params"] = params
        return data

    @classmethod
    def from_dict(cls, data: Any, path: str = "plugins[?]") -> "PluginSpec":
        if isinstance(data, str):  # "spelling" shorthand
            return cls(name=_require_str(data, f"{path}.name"))
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("name", "label", "params"), path)
        label = data.get("label")
        if label is not None:
            label = _require_str(label, f"{path}.label")
        params = data.get("params", {})
        params = dict(_require_mapping(params, f"{path}.params"))
        return cls(name=_require_str(data.get("name"), f"{path}.name"), label=label, params=params)


@dataclass(frozen=True)
class ExecutionSpec:
    """Seed, worker fan-out, fault tolerance and execution-level plugin defaults.

    The three fault-tolerance knobs (``timeout_seconds``, ``max_retries``,
    ``retry_backoff_seconds``) are all None by default, which leaves the
    tolerance layer off entirely; setting any one of them opts the run into
    :class:`~repro.core.faults.FaultPolicy` handling (per-scenario watchdog,
    worker-crash retry, quarantine).
    """

    seed: int = 2008
    jobs: int = 1
    executor: str | None = None
    block_size: int | None = None
    timeout_seconds: float | None = None
    max_retries: int | None = None
    retry_backoff_seconds: float | None = None
    mutations_per_token: int | None = None
    max_scenarios_per_class: int | None = None
    layout: str | None = None
    #: Whether scenarios may take the delta-validation fast path (outcomes
    #: are identical either way; ``--no-incremental`` is the escape hatch).
    incremental: bool = True

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"seed": self.seed, "jobs": self.jobs}
        if not self.incremental:
            data["incremental"] = False
        for key in (
            "executor",
            "block_size",
            "timeout_seconds",
            "max_retries",
            "retry_backoff_seconds",
            "mutations_per_token",
            "max_scenarios_per_class",
            "layout",
        ):
            value = getattr(self, key)
            if value is not None:
                data[key] = value
        return data

    @classmethod
    def from_dict(cls, data: Any, path: str = "execution") -> "ExecutionSpec":
        data = _require_mapping(data, path)
        known = (
            "seed",
            "jobs",
            "executor",
            "block_size",
            "timeout_seconds",
            "max_retries",
            "retry_backoff_seconds",
            "mutations_per_token",
            "max_scenarios_per_class",
            "layout",
            "incremental",
        )
        _reject_unknown_keys(data, known, path)
        kwargs: dict[str, Any] = {}
        if "seed" in data:
            kwargs["seed"] = _require_int(data["seed"], f"{path}.seed")
        if "incremental" in data:
            kwargs["incremental"] = _require_bool(data["incremental"], f"{path}.incremental")
        if "jobs" in data:
            kwargs["jobs"] = _require_int(data["jobs"], f"{path}.jobs")
        for key in ("executor", "layout"):
            if data.get(key) is not None:
                kwargs[key] = _require_str(data[key], f"{path}.{key}")
        for key in ("block_size", "max_retries", "mutations_per_token", "max_scenarios_per_class"):
            if data.get(key) is not None:
                kwargs[key] = _require_int(data[key], f"{path}.{key}")
        for key in ("timeout_seconds", "retry_backoff_seconds"):
            if data.get(key) is not None:
                kwargs[key] = _require_number(data[key], f"{path}.{key}")
        return cls(**kwargs)

    def validate(self, path: str = "execution") -> None:
        if self.jobs < 1:
            raise SpecError(f"{path}.jobs: must be a positive integer, got {self.jobs}")
        if self.executor is not None and self.executor not in EXECUTOR_CHOICES:
            raise SpecError(
                f"{path}.executor: unknown executor {self.executor!r}; "
                f"available: {', '.join(EXECUTOR_CHOICES)}"
            )
        for key in ("block_size", "mutations_per_token", "max_scenarios_per_class"):
            value = getattr(self, key)
            if value is not None and value < 1:
                raise SpecError(f"{path}.{key}: must be a positive integer, got {value}")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise SpecError(
                f"{path}.timeout_seconds: must be positive, got {self.timeout_seconds}"
            )
        if self.max_retries is not None and self.max_retries < 0:
            raise SpecError(
                f"{path}.max_retries: must be zero or positive, got {self.max_retries}"
            )
        if self.retry_backoff_seconds is not None and self.retry_backoff_seconds < 0:
            raise SpecError(
                f"{path}.retry_backoff_seconds: must be zero or positive, "
                f"got {self.retry_backoff_seconds}"
            )
        if self.layout is not None:
            from repro.keyboard.layouts import available_layouts, get_layout

            try:
                get_layout(self.layout)
            except KeyError:
                raise SpecError(
                    f"{path}.layout: unknown layout {self.layout!r}; "
                    f"available: {', '.join(available_layouts())}"
                ) from None


@dataclass(frozen=True)
class StoreSpec:
    """Persistent result-store settings of a spec-driven run.

    ``retry_quarantined`` controls what a resumed run does with scenarios
    the fault-tolerance layer quarantined: False (the default) keeps
    skipping them, True drops their quarantine entries and re-attempts
    them.
    """

    root: str
    resume: bool = False
    retry_quarantined: bool = False

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {"root": self.root}
        if self.resume:
            data["resume"] = True
        if self.retry_quarantined:
            data["retry_quarantined"] = True
        return data

    @classmethod
    def from_dict(cls, data: Any, path: str = "store") -> "StoreSpec":
        data = _require_mapping(data, path)
        _reject_unknown_keys(data, ("root", "resume", "retry_quarantined"), path)
        resume = data.get("resume", False)
        retry = data.get("retry_quarantined", False)
        return cls(
            root=_require_str(data.get("root"), f"{path}.root"),
            resume=_require_bool(resume, f"{path}.resume"),
            retry_quarantined=_require_bool(retry, f"{path}.retry_quarantined"),
        )


# -------------------------------------------------------------------- top level
@dataclass(frozen=True)
class ExperimentSpec:
    """A whole systems x plugins injection experiment, as data."""

    systems: tuple[SystemSpec, ...]
    plugins: tuple[PluginSpec, ...]
    execution: ExecutionSpec = field(default_factory=ExecutionSpec)
    store: StoreSpec | None = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "systems",
            tuple(SystemSpec(s) if isinstance(s, str) else s for s in self.systems),
        )
        object.__setattr__(
            self,
            "plugins",
            tuple(PluginSpec(p) if isinstance(p, str) else p for p in self.plugins),
        )

    # ------------------------------------------------------------ serialization
    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "systems": [system.to_dict() for system in self.systems],
            "plugins": [plugin.to_dict() for plugin in self.plugins],
            "execution": self.execution.to_dict(),
        }
        if self.store is not None:
            data["store"] = self.store.to_dict()
        return data

    @classmethod
    def from_dict(cls, data: Any) -> "ExperimentSpec":
        data = _require_mapping(data, "spec")
        _reject_unknown_keys(data, ("systems", "plugins", "execution", "store"), "")
        raw_systems = data.get("systems")
        if not isinstance(raw_systems, (list, tuple)):
            raise SpecError(f"systems: expected a list, got {raw_systems!r}")
        raw_plugins = data.get("plugins")
        if not isinstance(raw_plugins, (list, tuple)):
            raise SpecError(f"plugins: expected a list, got {raw_plugins!r}")
        execution = ExecutionSpec.from_dict(data.get("execution", {}))
        store = None
        if data.get("store") is not None:
            store = StoreSpec.from_dict(data["store"])
        return cls(
            systems=tuple(
                SystemSpec.from_dict(entry, f"systems[{index}]")
                for index, entry in enumerate(raw_systems)
            ),
            plugins=tuple(
                PluginSpec.from_dict(entry, f"plugins[{index}]")
                for index, entry in enumerate(raw_plugins)
            ),
            execution=execution,
            store=store,
        )

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent) + "\n"

    def to_toml(self) -> str:
        return spec_dict_to_toml(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid JSON spec: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_toml(cls, text: str) -> "ExperimentSpec":
        tomllib = _toml_loader()
        try:
            data = tomllib.loads(text)
        except tomllib.TOMLDecodeError as exc:
            raise SpecError(f"invalid TOML spec: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: str | Path) -> "ExperimentSpec":
        """Load a spec from a ``.toml`` or ``.json`` file (sniffed otherwise)."""
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise SpecError(f"cannot read spec file {path}: {exc}") from exc
        suffix = path.suffix.lower()
        if suffix == ".json" or (suffix != ".toml" and text.lstrip().startswith("{")):
            loader = cls.from_json
        else:
            loader = cls.from_toml
        try:
            return loader(text)
        except SpecError as exc:
            raise SpecError(f"{path}: {exc}") from None

    # -------------------------------------------------------------- validation
    def validate(self) -> "ExperimentSpec":
        """Check the spec against the registries; returns self when valid.

        Every failure names the exact offending path, e.g.
        ``plugins[1].params.layout: unknown layout 'qwertz-xx'``.
        """
        from repro.registry import available_systems, get_system

        if not self.systems:
            raise SpecError("systems: an experiment needs at least one system")
        if not self.plugins:
            raise SpecError("plugins: an experiment needs at least one plugin")
        # execution first: its defaults are folded into the plugin params, so
        # an invalid layout should be reported where the user wrote it
        self.execution.validate()
        from repro.core.store import filename_for
        from repro.sut.base import split_sut

        seen_systems: dict[str, int] = {}
        seen_files: dict[str, int] = {}
        seen_displays: dict[str, int] = {}
        for index, system in enumerate(self.systems):
            try:
                factory = get_system(system.name)
            except SpecError:
                raise SpecError(
                    f"systems[{index}].name: unknown system {system.name!r}; "
                    f"available: {', '.join(available_systems())}"
                ) from None
            if system.key in seen_systems:
                raise SpecError(
                    f"systems[{index}]: duplicate system {system.key!r} "
                    f"(already listed at systems[{seen_systems[system.key]}]); "
                    "list each system once, or give one a distinct label"
                )
            seen_systems[system.key] = index
            # distinct keys may still sanitize to one store filename, which
            # would interleave both systems' records in a single JSONL
            filename = filename_for(system.key)
            if filename in seen_files:
                other = self.systems[seen_files[filename]].key
                raise SpecError(
                    f"systems[{index}]: label {system.key!r} shares the store "
                    f"filename {filename!r} with {other!r} "
                    f"(systems[{seen_files[filename]}]); give one a label that "
                    "differs in [A-Za-z0-9._-] characters"
                )
            seen_files[filename] = index
            # mirror CampaignSuite.system_names(): two systems whose SUTs
            # share a display name would merge into one rendered table
            # column, so validate must refuse what run-spec would refuse
            system.validate_chaos(f"systems[{index}].chaos")
            display = split_sut(factory)[0].name
            if display in seen_displays:
                other = self.systems[seen_displays[display]].name
                raise SpecError(
                    f"systems[{index}]: system {system.name!r} and {other!r} "
                    f"(systems[{seen_displays[display]}]) share the SUT display "
                    f"name {display!r}; rendered tables would merge them"
                )
            seen_displays[display] = index
        seen_plugins: dict[str, int] = {}
        for index, plugin in enumerate(self.plugins):
            try:
                from repro.plugins.base import available_plugins, get_plugin

                plugin_class = get_plugin(plugin.name)
            except KeyError:
                raise SpecError(
                    f"plugins[{index}].name: unknown plugin {plugin.name!r}; "
                    f"available: {', '.join(available_plugins())}"
                ) from None
            if plugin.key in seen_plugins:
                raise SpecError(
                    f"plugins[{index}]: duplicate plugin {plugin.key!r} "
                    f"(already listed at plugins[{seen_plugins[plugin.key]}]); "
                    "give one of them a distinct label"
                )
            seen_plugins[plugin.key] = index
            try:
                plugin_class.from_params(self._effective_params(plugin, plugin_class))
            except SpecError as exc:
                raise SpecError(f"plugins[{index}].params.{exc}") from None
        return self

    # ------------------------------------------------------------ construction
    def _effective_params(self, plugin: PluginSpec, plugin_class) -> dict[str, Any]:
        """Plugin params with the execution-level defaults folded in."""
        params = {key: value for key, value in plugin.params.items() if value is not None}
        for key in _PLUGIN_DEFAULT_KEYS:
            value = getattr(self.execution, key)
            if value is not None and key in plugin_class.param_names and key not in params:
                params[key] = value
        return params

    def build_systems(self) -> dict[str, Callable[[], Any]]:
        """Resolve the systems into ``{key: factory}`` (registry lookups).

        Systems with a ``chaos`` table come back wrapped in a picklable
        :class:`~repro.sut.chaos.ChaosFactory`, so every worker -- thread or
        process -- rebuilds the same seeded chaos wrapper.
        """
        from repro.registry import get_system

        result: dict[str, Callable[[], Any]] = {}
        for system in self.systems:
            factory = get_system(system.name)
            if system.chaos:
                from repro.sut.chaos import ChaosFactory

                factory = ChaosFactory.from_params(factory, system.chaos)
            result[system.key] = factory
        return result

    def build_plugins(self) -> list[Any]:
        """Construct fresh plugin instances via each plugin's ``from_params``.

        A plugin whose spec label differs from its registry name gets the
        label as its instance ``name``, so campaign results and store
        records are keyed by the label.
        """
        from repro.plugins.base import get_plugin

        instances = []
        for plugin in self.plugins:
            plugin_class = get_plugin(plugin.name)
            instance = plugin_class.from_params(self._effective_params(plugin, plugin_class))
            if plugin.key != instance.name:
                instance.name = plugin.key
            instances.append(instance)
        return instances

    def build_store(self):
        """The :class:`~repro.core.store.ResultStore` of this spec, or None."""
        if self.store is None:
            return None
        from repro.core.store import ResultStore

        return ResultStore(self.store.root)

    def seed_for(self, system_key: str, plugin_key: str) -> int:
        """Seed of one (system, plugin) cell of the matrix."""
        return derive_seed(self.execution.seed, system_key, plugin_key)


# ------------------------------------------------------- validation as data
def spec_error_code(message: str) -> str:
    """Stable diagnostic code classifying a :class:`SpecError` message.

    The codes are the spec-surface rule codes of :mod:`repro.analysis`
    (see docs/LINTING.md), so ``validate --json``, the campaign
    service's 400 bodies and ``conferr lint --json`` all speak the same
    coded dialect.  Classification is by the stable phrasing of the
    messages this module itself produces; anything unrecognized is the
    catch-all ``spec/invalid-value``.
    """
    if (
        message.startswith(("invalid JSON spec", "invalid TOML spec"))
        or "cannot read spec file" in message
    ):
        return "spec/parse-error"
    if "unknown key (expected one of" in message:
        return "spec/unknown-key"
    if "unknown system" in message:
        return "spec/unknown-system"
    if "unknown plugin " in message:
        return "spec/unknown-plugin"
    if "unknown parameter for plugin" in message:
        return "spec/unknown-plugin-param"
    if "duplicate system" in message or "duplicate plugin" in message:
        return "spec/duplicate-label"
    if "share the SUT display name" in message:
        return "spec/duplicate-label"
    if "shares the store filename" in message:
        return "spec/store-filename-clash"
    return "spec/invalid-value"


def validation_error_entry(message: str) -> dict[str, Any]:
    """One machine-readable validation error from a :class:`SpecError` message.

    Spec errors are ``path: message`` strings with the exact offending path
    up front (``plugins[1].params.layout: unknown layout 'qwertz-xx'``);
    this splits them into ``{"path", "message"}`` and attaches the
    :func:`spec_error_code` diagnostic code (validation failures are all
    ``"error"`` severity -- :meth:`ExperimentSpec.validate` has no notion
    of warnings).  Messages without a leading path (paths never contain
    spaces) get ``path: None``.
    """
    code = spec_error_code(message)
    head, sep, rest = message.partition(": ")
    if sep and head and " " not in head:
        return {"code": code, "path": head, "message": rest, "severity": "error"}
    return {"code": code, "path": None, "message": message, "severity": "error"}


def validation_report(spec: "ExperimentSpec") -> dict[str, Any]:
    """Validate a spec into a JSON-native report: ``{"valid", "errors"}``.

    The exact document ``conferr validate --json`` prints and the campaign
    service returns as its 400 response body -- one shape, produced in one
    place.  Validation stops at the first failure (as :meth:`validate`
    does), so ``errors`` holds at most one entry.
    """
    try:
        spec.validate()
    except SpecError as exc:
        return {"valid": False, "errors": [validation_error_entry(str(exc))]}
    return {"valid": True, "errors": []}


# ------------------------------------------------------------------ spec diffing
#: Paths never compared when deciding whether a resume continues the same
#: experiment: the store location is implied by the directory being resumed,
#: and profiles are executor-invariant, so worker settings (including the
#: work-stealing block size) may differ freely.  The fault-tolerance knobs
#: are likewise free: they change how failures are *handled*, never which
#: scenarios exist or what a successful record contains.  The incremental
#: knob only changes validation *cost* -- profiles are byte-identical with
#: it on or off -- so a resume may freely flip it.
RESUME_IRRELEVANT_PATHS = frozenset(
    {
        "store",
        "execution.jobs",
        "execution.executor",
        "execution.block_size",
        "execution.timeout_seconds",
        "execution.max_retries",
        "execution.retry_backoff_seconds",
        "execution.incremental",
    }
)


def diff_spec_dicts(
    stored: Mapping[str, Any],
    current: Mapping[str, Any],
    ignore: frozenset[str] = RESUME_IRRELEVANT_PATHS,
) -> list[str]:
    """Structured diff of two serialized specs, as ``path: difference`` lines.

    Used by result stores to decide whether a resume continues the stored
    experiment; an empty list means compatible.
    """
    diffs: list[str] = []

    def walk(a: Any, b: Any, path: str) -> None:
        if path in ignore:
            return
        if isinstance(a, Mapping) and isinstance(b, Mapping):
            for key in sorted(set(a) | set(b)):
                child = f"{path}.{key}" if path else str(key)
                if child in ignore:
                    continue
                if key not in a:
                    diffs.append(f"{child}: absent on disk but {b[key]!r} now")
                elif key not in b:
                    diffs.append(f"{child}: {a[key]!r} on disk but absent now")
                else:
                    walk(a[key], b[key], child)
        elif isinstance(a, list) and isinstance(b, list):
            if len(a) != len(b):
                diffs.append(f"{path}: {len(a)} entries on disk but {len(b)} now")
                return
            for index, (item_a, item_b) in enumerate(zip(a, b)):
                walk(item_a, item_b, f"{path}[{index}]")
        elif a != b:
            diffs.append(f"{path}: {a!r} on disk but {b!r} now")

    walk(dict(stored), dict(current), "")
    return diffs


# ------------------------------------------------------------------- TOML output
def _toml_value(value: Any, path: str) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, str):
        return json.dumps(value)  # JSON string escaping is valid TOML
    if isinstance(value, (list, tuple)):
        return "[" + ", ".join(_toml_value(item, path) for item in value) + "]"
    raise SpecError(f"{path}: value {value!r} cannot be written to TOML")


def spec_dict_to_toml(data: Mapping[str, Any]) -> str:
    """Render a serialized spec (``ExperimentSpec.to_dict``) as a TOML document.

    The writer covers exactly the shapes a spec produces -- scalar values,
    lists of scalars, and the fixed two-level table layout -- which keeps the
    repository free of a TOML-writing dependency.
    """
    lines: list[str] = []
    for index, system in enumerate(data.get("systems", ())):
        lines.append("[[systems]]")
        for key, value in system.items():
            if key == "chaos":
                continue
            lines.append(f"{key} = {_toml_value(value, f'systems[{index}].{key}')}")
        chaos = system.get("chaos") or {}
        if chaos:
            lines.append("[systems.chaos]")
            for key, value in chaos.items():
                lines.append(f"{key} = {_toml_value(value, f'systems[{index}].chaos.{key}')}")
        lines.append("")
    for index, plugin in enumerate(data.get("plugins", ())):
        lines.append("[[plugins]]")
        for key, value in plugin.items():
            if key == "params":
                continue
            lines.append(f"{key} = {_toml_value(value, f'plugins[{index}].{key}')}")
        params = plugin.get("params") or {}
        if params:
            lines.append("[plugins.params]")
            for key, value in params.items():
                lines.append(f"{key} = {_toml_value(value, f'plugins[{index}].params.{key}')}")
        lines.append("")
    for section in ("execution", "store"):
        table = data.get(section)
        if not table:
            continue
        lines.append(f"[{section}]")
        for key, value in table.items():
            lines.append(f"{key} = {_toml_value(value, f'{section}.{key}')}")
        lines.append("")
    return "\n".join(lines)
