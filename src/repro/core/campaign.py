"""Campaigns: declarative descriptions of injection experiments.

A campaign bundles a system under test with one or more error-generator
plugins and a seed; running it produces one resilience profile per plugin
plus a merged overall profile.  Campaigns make the benchmark reproducible:
the same campaign with the same seed always injects the same faults.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.engine import InjectionEngine
from repro.core.profile import InjectionRecord, ResilienceProfile
from repro.errors import CampaignError
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest

__all__ = ["Campaign", "CampaignResult"]


@dataclass
class CampaignResult:
    """Profiles produced by one campaign run."""

    system_name: str
    per_plugin: dict[str, ResilienceProfile]

    @property
    def overall(self) -> ResilienceProfile:
        """All records of all plugins merged into one profile."""
        merged = ResilienceProfile(self.system_name)
        for profile in self.per_plugin.values():
            merged.extend(profile.records)
        return merged

    def profile(self, plugin_name: str) -> ResilienceProfile:
        """Profile of one plugin (KeyError if the plugin was not part of the campaign)."""
        return self.per_plugin[plugin_name]


@dataclass
class Campaign:
    """One benchmark: a SUT, the plugins to run against it, and a seed."""

    sut: SystemUnderTest
    plugins: Sequence[ErrorGeneratorPlugin]
    seed: int = 0
    check_baseline: bool = True
    observer: Callable[[InjectionRecord], None] | None = field(default=None, repr=False)

    def run(self) -> CampaignResult:
        """Run every plugin and collect the profiles.

        Raises :class:`~repro.errors.CampaignError` when no plugins are given
        or when the baseline (unmodified) configuration is itself unhealthy.
        """
        if not self.plugins:
            raise CampaignError("a campaign needs at least one plugin")
        per_plugin: dict[str, ResilienceProfile] = {}
        for index, plugin in enumerate(self.plugins):
            engine = InjectionEngine(
                self.sut, plugin, seed=self.seed + index, observer=self.observer
            )
            if self.check_baseline and index == 0:
                problems = engine.baseline_check()
                if problems:
                    raise CampaignError(
                        "the unmodified configuration is not healthy: " + "; ".join(problems)
                    )
            per_plugin[plugin.name] = engine.run()
        return CampaignResult(self.sut.name, per_plugin)
