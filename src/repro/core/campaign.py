"""Campaigns: declarative descriptions of injection experiments.

A campaign bundles a system under test with one or more error-generator
plugins and a seed; running it produces one resilience profile per plugin
plus a merged overall profile.  Campaigns make the benchmark reproducible:
the same campaign with the same seed always injects the same faults, and
profiles are identical -- same records, same order, same outcomes, so
byte-identical summaries -- whatever the worker count (``jobs``) or executor
strategy used to run them (only per-record wall-clock durations differ).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.engine import InjectionEngine
from repro.core.faults import FaultPolicy
from repro.core.profile import InjectionRecord, ResilienceProfile
from repro.core.spec import ExperimentSpec, derive_seed
from repro.errors import CampaignError
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest, split_sut

__all__ = ["Campaign", "CampaignResult"]


@dataclass
class CampaignResult:
    """Profiles produced by one campaign run.

    ``executed`` and ``skipped`` count, per plugin, the scenarios that were
    run by this invocation and the ones a ``scenario_filter`` excluded (the
    resume path of campaign suites reports "replayed 0 scenarios" from
    these).
    """

    system_name: str
    per_plugin: dict[str, ResilienceProfile]
    executed: dict[str, int] = field(default_factory=dict)
    skipped: dict[str, int] = field(default_factory=dict)
    _overall_cache: ResilienceProfile | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def overall(self) -> ResilienceProfile:
        """All records of all plugins merged into one profile.

        The merge is memoized and the *same* profile object is returned on
        every access: treat it as read-only.  To change the result, go
        through :meth:`add_profile` (or call :meth:`invalidate` after
        mutating ``per_plugin`` directly); mutating the returned profile or
        the per-plugin profiles in place corrupts the cache.
        """
        if self._overall_cache is None:
            merged = ResilienceProfile(self.system_name)
            for profile in self.per_plugin.values():
                merged.extend(profile.records)
            self._overall_cache = merged
        return self._overall_cache

    def add_profile(self, plugin_name: str, profile: ResilienceProfile) -> ResilienceProfile:
        """Add (or replace) one plugin's profile and invalidate the merge cache."""
        self.per_plugin[plugin_name] = profile
        self.invalidate()
        return profile

    def invalidate(self) -> None:
        """Drop the memoized overall profile (recomputed on next access)."""
        self._overall_cache = None

    def profile(self, plugin_name: str) -> ResilienceProfile:
        """Profile of one plugin (KeyError if the plugin was not part of the campaign)."""
        return self.per_plugin[plugin_name]


@dataclass
class Campaign:
    """One benchmark: a SUT, the plugins to run against it, and a seed.

    ``sut`` may be a live instance or a zero-argument factory (the SUT class
    itself works); a factory is required when ``jobs > 1`` so that every
    worker can build a private instance.

    ``observer`` fires once per record in scenario order, live under every
    executor strategy: serially after each injection, and in parallel runs
    as soon as the in-order front of the scenario sequence completes (the
    engine's streaming merge).  ``block_size`` tunes how many scenarios a
    parallel worker pulls from the shared work queue at a time.

    Three hooks exist for suite-level orchestration (see
    :mod:`repro.core.suite`):

    ``seed_for``
        Overrides the default per-plugin seed (``seed + plugin_index``), e.g.
        to derive stable per-(system, plugin) seeds from one suite seed.
    ``scenario_filter``
        Predicate ``(plugin_name, scenario) -> bool``; scenarios it rejects
        are skipped without running (the resume path skips scenario ids
        already in the result store).  Skip counts land in
        :attr:`CampaignResult.skipped`.
    ``plugin_observer``
        Like ``observer`` but receives ``(plugin_name, record)`` -- enough
        context to append each record to a persistent store as it lands.
    """

    sut: SystemUnderTest | Callable[[], SystemUnderTest]
    plugins: Sequence[ErrorGeneratorPlugin]
    seed: int = 0
    check_baseline: bool = True
    observer: Callable[[InjectionRecord], None] | None = field(default=None, repr=False)
    jobs: int = 1
    executor: str | None = None
    block_size: int | None = None
    #: Opt-in fault tolerance (timeouts, crash retry, quarantine); None off.
    policy: FaultPolicy | None = None
    #: Whether scenarios may take the delta-validation fast path.
    incremental: bool = True
    seed_for: Callable[[ErrorGeneratorPlugin, int], int] | None = field(default=None, repr=False)
    scenario_filter: Callable[[str, object], bool] | None = field(default=None, repr=False)
    plugin_observer: Callable[[str, InjectionRecord], None] | None = field(
        default=None, repr=False
    )

    @classmethod
    def from_spec(cls, spec: ExperimentSpec, system: str | None = None) -> "Campaign":
        """Build the campaign of one system of a declarative experiment spec.

        ``system`` is the spec-level key (label or registry name); it may be
        omitted for a single-system spec.  The campaign runs under the same
        derived per-(system, plugin) seeds a :class:`~repro.core.suite.CampaignSuite`
        built from the spec would use, so a lone campaign and the matching
        suite cell inject identical scenario streams.
        """
        spec.validate()
        systems = spec.build_systems()
        if system is None:
            if len(systems) != 1:
                raise CampaignError(
                    f"spec describes {len(systems)} systems; pass system=<key> "
                    f"(one of: {', '.join(systems)})"
                )
            system = next(iter(systems))
        if system not in systems:
            raise CampaignError(
                f"system {system!r} is not part of the spec; available: {', '.join(systems)}"
            )
        seed = spec.execution.seed
        return cls(
            systems[system],
            spec.build_plugins(),
            seed=seed,
            jobs=spec.execution.jobs,
            executor=spec.execution.executor,
            block_size=spec.execution.block_size,
            policy=FaultPolicy.from_execution(spec.execution),
            incremental=spec.execution.incremental,
            seed_for=lambda plugin, _index, key=system: derive_seed(seed, key, plugin.name),
        )

    def run(self) -> CampaignResult:
        """Run every plugin and collect the profiles.

        Raises :class:`~repro.errors.CampaignError` when no plugins are given
        or when the baseline (unmodified) configuration is itself unhealthy.
        """
        if not self.plugins:
            raise CampaignError("a campaign needs at least one plugin")
        sut, sut_factory = split_sut(self.sut)
        result = CampaignResult(sut.name, {})
        for index, plugin in enumerate(self.plugins):
            seed = (
                self.seed + index if self.seed_for is None else self.seed_for(plugin, index)
            )
            engine = InjectionEngine(
                sut,
                plugin,
                seed=seed,
                observer=self._observer_for(plugin.name),
                sut_factory=sut_factory,
                jobs=self.jobs,
                executor=self.executor,
                block_size=self.block_size,
                policy=self.policy,
                incremental=self.incremental,
            )
            if self.check_baseline and index == 0:
                problems = engine.baseline_check()
                if problems:
                    raise CampaignError(
                        "the unmodified configuration is not healthy: " + "; ".join(problems)
                    )
            skipped = 0
            if self.scenario_filter is None:
                profile = engine.run()
            else:
                config_set, view_set, scenarios = engine.generate_scenarios()
                kept = [s for s in scenarios if self.scenario_filter(plugin.name, s)]
                skipped = len(scenarios) - len(kept)
                profile = engine.run(kept, config_set=config_set, view_set=view_set)
            result.add_profile(plugin.name, profile)
            result.executed[plugin.name] = len(profile)
            result.skipped[plugin.name] = skipped
        return result

    def _observer_for(self, plugin_name: str) -> Callable[[InjectionRecord], None] | None:
        """Compose the plain and plugin-aware observers for one plugin run."""
        if self.plugin_observer is None:
            return self.observer

        def observe(record: InjectionRecord) -> None:
            self.plugin_observer(plugin_name, record)
            if self.observer is not None:
                self.observer(record)

        return observe
