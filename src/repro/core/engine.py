"""The injection engine: ConfErr's end-to-end pipeline.

For one (system under test, error-generator plugin) pair the engine

1. parses the SUT's initial configuration files into system-specific trees,
2. maps them to the plugin's view,
3. asks the plugin for fault scenarios,
4. for each scenario: applies it to the pristine view, maps the mutated view
   back, serialises the faulty configuration files, starts the SUT with them,
   runs the functional tests, stops the SUT and records the outcome,
5. returns the resulting :class:`~repro.core.profile.ResilienceProfile`.

None of these steps require human intervention (paper Section 3).

Scenario application uses an apply/undo protocol: every built-in
:class:`~repro.core.templates.base.Operation` returns an inverse, so the
engine mutates one long-lived working view and rolls it back after each
experiment instead of deep-cloning the whole configuration set per scenario.
File serialisations of trees a scenario does not touch come from a baseline
cache computed once per campaign.  Campaigns can also fan scenarios out
across threads or processes (``jobs``/``executor``); each worker owns a
private SUT built from ``sut_factory``.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Mapping, Sequence

from repro.core.faults import FaultPolicy
from repro.core.infoset import ConfigNode, ConfigSet, ConfigTree
from repro.core.profile import InjectionOutcome, InjectionRecord, ResilienceProfile
from repro.core.templates.base import FaultScenario
from repro.errors import CampaignError, ConfErrError, SerializationError, SUTError, TransformError
from repro.parsers.base import get_dialect, serialize_tree
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest, split_sut
from repro.sut.incremental import (
    INCREMENTAL_STATS,
    BaselineValidation,
    NodeChange,
    ScenarioDelta,
    node_at,
    node_from_change,
)

__all__ = ["InjectionEngine"]


class InjectionEngine:
    """Runs injection experiments for one SUT and one plugin.

    Parameters
    ----------
    sut:
        Either a live :class:`SystemUnderTest` or a zero-argument factory
        returning one (the SUT class itself works).  Passing a factory is
        required for parallel execution: every worker builds its own instance.
    plugin:
        The error-generator plugin supplying view and fault scenarios.
    seed:
        Seed of the scenario-generation RNG (campaigns are reproducible).
    observer:
        Optional callback invoked once per record, in scenario order,
        regardless of the executor strategy or worker count.  Under every
        strategy the callback fires *live*: serial runs observe each record
        as it is produced, and parallel runs observe each record as soon as
        the in-order front of the scenario sequence completes (records that
        finish out of order wait in a merge buffer until the records before
        them arrive).
    sut_factory:
        Explicit factory; overrides the one inferred from ``sut``.  Must
        build SUTs configured identically to ``sut`` -- workers re-parse the
        pristine configuration from their own instance, so a mismatched
        factory would silently inject into a different configuration.
    jobs:
        Number of workers scenarios are fanned out to (1 = in-process serial).
    executor:
        Executor strategy name (``"serial"``, ``"thread"``, ``"process"``);
        None picks serial for ``jobs == 1`` and threads otherwise.
    block_size:
        Scenarios a parallel worker pulls from the shared work queue at a
        time (None: a heuristic based on the scenario count and worker
        count).  Smaller blocks rebalance skewed scenario costs better;
        larger blocks reduce queue traffic.  Profiles are identical for any
        value.
    policy:
        Optional :class:`~repro.core.faults.FaultPolicy` opting the campaign
        into the fault-tolerance layer (per-scenario timeouts, worker-crash
        retry and quarantine).  Requires a SUT factory -- a watchdog that
        cannot rebuild its worker context cannot recover anything.  None
        (the default) leaves every execution path untouched.
    """

    def __init__(
        self,
        sut: SystemUnderTest | Callable[[], SystemUnderTest],
        plugin: ErrorGeneratorPlugin,
        seed: int = 0,
        observer: Callable[[InjectionRecord], None] | None = None,
        *,
        sut_factory: Callable[[], SystemUnderTest] | None = None,
        jobs: int = 1,
        executor: str | None = None,
        block_size: int | None = None,
        policy: FaultPolicy | None = None,
        incremental: bool = True,
    ):
        if sut_factory is not None:
            self.sut = sut if isinstance(sut, SystemUnderTest) else sut_factory()
        else:
            sut, sut_factory = split_sut(sut)
            self.sut = sut
        #: Zero-argument factory producing fresh SUT instances for workers
        #: (None when only a shared instance was supplied).
        self.sut_factory = sut_factory
        self.plugin = plugin
        self.seed = seed
        #: Optional callback invoked after every injection (progress reporting).
        self.observer = observer
        self.jobs = jobs
        self.executor = executor
        self.block_size = block_size
        self.policy = policy
        #: Whether scenarios may take the delta-validation fast path
        #: (``--no-incremental`` turns this off; outcomes are identical).
        self.incremental = incremental

    # ---------------------------------------------------------------- parsing
    def parse_initial_configuration(self) -> ConfigSet:
        """Parse the SUT's default configuration files into a ConfigSet."""
        config_set = ConfigSet()
        for filename, text in self.sut.default_configuration().items():
            dialect = get_dialect(self.sut.dialect_for(filename))
            config_set.add(dialect.parse(text, filename=filename))
        return config_set

    # -------------------------------------------------------------- scenarios
    def generate_scenarios(
        self, config_set: ConfigSet | None = None
    ) -> tuple[ConfigSet, ConfigSet, list[FaultScenario]]:
        """Return (system config set, plugin view set, scenarios)."""
        rng = random.Random(self.seed)
        config_set = config_set or self.parse_initial_configuration()
        view_set = self.plugin.view.transform(config_set)
        scenarios = self.plugin.generate(view_set, rng)
        return config_set, view_set, scenarios

    def baseline_files(self, config_set: ConfigSet, view_set: ConfigSet) -> dict[str, str] | None:
        """Serialise the *pristine* configuration through the view round-trip.

        The result is what :meth:`materialize` produces for trees a scenario
        does not touch, so it is computed once per campaign and reused.  None
        when the pristine round-trip itself cannot be serialised (degenerate
        harness setups); callers then fall back to full per-scenario
        untransforms.
        """
        try:
            system_set = self.plugin.view.untransform(view_set, config_set)
            return {tree.name: serialize_tree(tree) for tree in system_set}
        except ConfErrError:
            return None

    # ------------------------------------------------------------ incremental
    def prepare_incremental(
        self, config_set: ConfigSet, view_set: ConfigSet
    ) -> BaselineValidation | None:
        """Prepare the delta-validation baseline, or None when unsound.

        The delta path validates baseline *trees* patched in place of the
        full serialise-and-reparse round trip, so it is only enabled when

        * the engine and the SUT opt in (``incremental`` and a
          ``start_delta`` override),
        * the pristine full validation started with a reusable index, and
        * the view's reverse mapping reproduces the parsed pristine trees
          *exactly* (a view that normalises formatting would make patched
          baseline trees diverge from what the SUT would really see).
        """
        if not self.incremental or not self.sut.supports_delta():
            return None
        try:
            system_set = self.plugin.view.untransform(view_set, config_set)
        except ConfErrError:
            return None
        prepared = self.sut.prepare(self.sut.default_configuration())
        if prepared is None or not prepared.result.started or prepared.state is None:
            return None
        if prepared.trees.names() != system_set.names():
            return None
        for name in system_set.names():
            if not prepared.trees.get(name).structurally_equal(system_set.get(name)):
                return None
        return prepared

    def _vet_change(
        self, change: NodeChange, baseline_trees: ConfigSet
    ) -> NodeChange | None:
        """Round-trip-check ``change``; returns the change the SUT may trust.

        The full path validates ``parse(serialize(tree))``; the delta path
        validates patched baseline trees directly, so every changed node
        must be proven to mean what the real parser would read.  Three
        verdicts:

        * the dialect's :meth:`~repro.parsers.base.ConfigDialect.roundtrip_safe`
          pre-filter (or an actual serialise-and-reparse) shows the node
          survives intact -- the change stands as-is;
        * the dialect is line-oriented and the mutated text re-parses as a
          *single node of the same kind* with different fields (a comment
          marker truncating a value, say) -- the reparsed fields are
          substituted, because that is exactly what a full parse of the
          mutated file would see on that line;
        * anything else (parse error, node splits, kind changes) -- ``None``,
          routing the scenario through the full pass.
        """
        if change.tree not in baseline_trees:
            return None
        baseline_tree = baseline_trees.get(change.tree)
        base_node = node_at(baseline_tree, change.path)
        if base_node is None or base_node.kind != change.kind:
            return None
        dialect = get_dialect(baseline_tree.dialect)
        if not base_node.children and dialect.roundtrip_safe(
            change.kind, change.name, change.value, change.attrs
        ):
            return change
        patched = node_from_change(change, base_node)
        root = ConfigNode("file", name=baseline_tree.name)
        root.append(patched)
        snippet = ConfigTree(baseline_tree.name, root, dialect=baseline_tree.dialect)
        try:
            reparsed = dialect.parse(dialect.serialize(snippet), filename=baseline_tree.name)
        except ConfErrError:
            return None
        children = reparsed.root.children
        if len(children) != 1:
            return None
        reparsed_node = children[0]
        if reparsed_node.structurally_equal(patched):
            return change
        if dialect.line_oriented and reparsed_node.kind == change.kind:
            INCREMENTAL_STATS.substitutions += 1
            return NodeChange(
                tree=change.tree,
                path=change.path,
                kind=change.kind,
                name=reparsed_node.name,
                value=reparsed_node.value,
                attrs=dict(reparsed_node.attrs),
            )
        return None

    def _attempt_delta(
        self,
        scenario: FaultScenario,
        view_set: ConfigSet,
        prepared: BaselineValidation,
    ):
        """Try to classify ``scenario``'s start via the delta path.

        Returns the :class:`~repro.sut.base.StartResult` a full start on the
        mutated files would have produced, or None to run the full path.
        Any exception is treated as a fallback: the full pass re-raises (and
        classifies) whatever actually fails.
        """
        INCREMENTAL_STATS.attempts += 1
        try:
            with scenario.applied_to(view_set) as mutated:
                changes = self.plugin.view.scenario_changes(scenario, mutated, prepared.trees)
                if changes is None:
                    INCREMENTAL_STATS.fallbacks += 1
                    return None
                vetted = []
                for change in changes:
                    checked = self._vet_change(change, prepared.trees)
                    if checked is None:
                        INCREMENTAL_STATS.guard_fallbacks += 1
                        return None
                    vetted.append(checked)
                result = self.sut.start_delta(prepared, ScenarioDelta(tuple(vetted)))
        except Exception:
            INCREMENTAL_STATS.errors += 1
            self._safe_stop()
            return None
        if result is None:
            INCREMENTAL_STATS.fallbacks += 1
            return None
        INCREMENTAL_STATS.delta_starts += 1
        return result

    # -------------------------------------------------------------- injection
    def run(
        self,
        scenarios: Sequence[FaultScenario] | None = None,
        *,
        config_set: ConfigSet | None = None,
        view_set: ConfigSet | None = None,
    ) -> ResilienceProfile:
        """Run the full campaign and return the resilience profile.

        Records are merged in scenario order whatever the executor strategy
        and worker count, so profiles are seed-stable across ``jobs``
        settings: same records, order and outcomes (hence byte-identical
        summaries); only per-record wall-clock durations vary.

        The merge is *streaming*: parallel strategies yield each record as
        its experiment completes, and an in-order buffer releases records to
        the profile and the observer as soon as the front of the scenario
        sequence is contiguous.  Observers (progress lines, result-store
        appends) therefore fire while workers are still injecting; the
        buffer only ever holds records that completed ahead of a
        still-running earlier scenario (typically around ``jobs x
        block_size`` entries).

        When ``scenarios`` is given (a pre-generated, possibly filtered list
        -- the resume path of campaign suites), generation is skipped
        entirely and exactly those scenarios run.  ``config_set``/``view_set``
        let a caller that already ran :meth:`generate_scenarios` reuse its
        parse and view transform instead of paying for them twice.
        """
        if scenarios is None:
            config_set, view_set, scenario_list = self.generate_scenarios(config_set)
            scenario_list = list(scenario_list)
        else:
            if config_set is None:
                config_set = self.parse_initial_configuration()
            if view_set is None:
                view_set = self.plugin.view.transform(config_set)
            scenario_list = list(scenarios)

        from repro.core.executor import SerialExecutor, resolve_executor

        strategy = resolve_executor(self.executor, self.jobs, self.block_size)
        if isinstance(strategy, SerialExecutor) and self.policy is None:
            # serial == inline: reuse this engine's SUT and already-built
            # context instead of re-parsing inside a worker
            strategy = None
        if strategy is None and self.policy is not None:
            # fault tolerance runs scenarios on a disposable guarded worker
            # even serially: a hung context must be abandonable, which the
            # inline path (sharing this engine's own SUT) cannot offer
            strategy = SerialExecutor()
        profile = ResilienceProfile(self.sut.name)
        if not scenario_list:
            return profile
        if strategy is None:
            # serial: observe each record as it is produced (live progress)
            baseline = self.baseline_files(config_set, view_set)
            prepared = self.prepare_incremental(config_set, view_set)
            for scenario in scenario_list:
                record = self.run_scenario(
                    scenario, config_set, view_set, baseline_files=baseline, incremental=prepared
                )
                profile.add(record)
                if self.observer is not None:
                    self.observer(record)
        else:
            # parallel: workers stream (index, record) pairs in completion
            # order; release them in scenario order as the front completes so
            # observers fire live (store appends stay durable mid-run)
            buffer: dict[int, InjectionRecord] = {}
            next_index = 0
            for index, record in strategy.stream(self.worker_spec(), scenario_list):
                buffer[index] = record
                while next_index in buffer:
                    ready = buffer.pop(next_index)
                    next_index += 1
                    profile.add(ready)
                    if self.observer is not None:
                        self.observer(ready)
            if next_index != len(scenario_list):  # pragma: no cover - strategy bug
                raise CampaignError(
                    f"executor stream ended after {next_index} of "
                    f"{len(scenario_list)} scenarios (no record for index "
                    f"{next_index}; {len(buffer)} later records stranded)"
                )
        return profile

    def worker_spec(self):
        """Picklable description of this engine for executor workers."""
        from repro.core.executor import WorkerSpec

        if self.sut_factory is None:
            raise CampaignError(
                "parallel execution and fault tolerance need a SUT factory: pass "
                "the SUT class or a zero-argument callable instead of a shared "
                "instance"
            )
        return WorkerSpec(
            sut_factory=self.sut_factory,
            plugin=self.plugin,
            policy=self.policy,
            incremental=self.incremental,
        )

    def materialize(
        self,
        scenario: FaultScenario,
        config_set: ConfigSet,
        view_set: ConfigSet,
        baseline_files: Mapping[str, str] | None = None,
    ) -> dict[str, str]:
        """Produce the faulty configuration files for ``scenario``.

        ``view_set`` is used as the working copy: it is mutated in place and
        rolled back before returning (operations without an inverse fall back
        to a copy-on-write overlay that clones only the touched trees).  When
        ``baseline_files`` is given and the view supports localisation, only
        the touched trees are reverse-transformed and serialised.

        Raises :class:`~repro.errors.SerializationError` (or
        :class:`~repro.errors.TransformError`) when the mutation cannot be
        expressed in the native format.
        """
        with scenario.applied_to(view_set) as mutated:
            partial = None
            if baseline_files is not None:
                touched = scenario.touched_trees()
                if touched is not None:
                    partial = self.plugin.view.untransform_touched(mutated, config_set, touched)
            if partial is None:
                system_set = self.plugin.view.untransform(mutated, config_set)
                return {tree.name: serialize_tree(tree) for tree in system_set}
            files = dict(baseline_files)
            for tree in partial:
                files[tree.name] = serialize_tree(tree)
            return files

    def materialize_cloning(
        self, scenario: FaultScenario, config_set: ConfigSet, view_set: ConfigSet
    ) -> dict[str, str]:
        """Reference materialisation: full clone per scenario (the pre-CoW path).

        Kept for benchmarking the apply/undo fast path against and as an
        always-correct oracle in tests.
        """
        mutated_view = scenario.apply(view_set)
        system_set = self.plugin.view.untransform(mutated_view, config_set)
        return {tree.name: serialize_tree(tree) for tree in system_set}

    def run_scenario(
        self,
        scenario: FaultScenario,
        config_set: ConfigSet,
        view_set: ConfigSet,
        baseline_files: Mapping[str, str] | None = None,
        incremental: BaselineValidation | None = None,
    ) -> InjectionRecord:
        """Run a single injection experiment and classify its outcome.

        With a prepared ``incremental`` baseline, the engine first offers
        the scenario to the delta-validation path; scenarios it cannot
        soundly localise (structural edits, guard refusals) run the classic
        materialise-and-start pipeline, byte-identically.
        """
        started_at = time.perf_counter()

        def record(outcome: InjectionOutcome, messages=(), failed_tests=()) -> InjectionRecord:
            return InjectionRecord(
                scenario_id=scenario.scenario_id,
                category=scenario.category,
                description=scenario.description,
                outcome=outcome,
                messages=list(messages),
                failed_tests=list(failed_tests),
                metadata=dict(scenario.metadata),
                duration_seconds=time.perf_counter() - started_at,
            )

        start_result = None
        if incremental is not None:
            start_result = self._attempt_delta(scenario, view_set, incremental)
            if start_result is incremental.result and incremental.functional is not None:
                # the SUT declared the delta a no-op (see start_delta): the
                # post-start state is the pristine state, so the recorded
                # baseline functional outcomes are the suite's outcomes
                INCREMENTAL_STATS.noop_reuses += 1
                self._safe_stop()
                failed = []
                messages = list(start_result.warnings)
                for passed, name, detail in incremental.functional:
                    if not passed:
                        failed.append(name)
                        if detail:
                            messages.append(f"{name}: {detail}")
                if failed:
                    return record(
                        InjectionOutcome.DETECTED_BY_TESTS, messages=messages, failed_tests=failed
                    )
                return record(InjectionOutcome.IGNORED, messages=messages)

        if start_result is None:
            try:
                files = self.materialize(
                    scenario, config_set, view_set, baseline_files=baseline_files
                )
            except (SerializationError, TransformError) as exc:
                return record(InjectionOutcome.INJECTION_IMPOSSIBLE, messages=[str(exc)])
            except ConfErrError as exc:
                return record(InjectionOutcome.HARNESS_ERROR, messages=[str(exc)])

            try:
                start_result = self.sut.start(files)
            except SUTError as exc:
                return record(InjectionOutcome.HARNESS_ERROR, messages=[str(exc)])
            except Exception as exc:
                # A crashing simulated SUT must not take the whole campaign (or a
                # pool worker) down with it; record it and keep injecting.
                self._safe_stop()
                return record(
                    InjectionOutcome.HARNESS_ERROR,
                    messages=[f"unexpected SUT failure: {type(exc).__name__}: {exc}"],
                )

        if not start_result.started:
            self._safe_stop()
            return record(InjectionOutcome.DETECTED_AT_STARTUP, messages=start_result.errors)

        try:
            failed = []
            messages = list(start_result.warnings)
            for test in self.sut.functional_tests():
                result = test.run(self.sut)
                if not result.passed:
                    failed.append(result.name)
                    if result.detail:
                        messages.append(f"{result.name}: {result.detail}")
            if failed:
                return record(InjectionOutcome.DETECTED_BY_TESTS, messages=messages, failed_tests=failed)
            return record(InjectionOutcome.IGNORED, messages=messages)
        except Exception as exc:
            # like a crashing start(), a crashing diagnosis test must not
            # abort the campaign
            return record(
                InjectionOutcome.HARNESS_ERROR,
                messages=[f"unexpected functional-test failure: {type(exc).__name__}: {exc}"],
            )
        finally:
            self._safe_stop()

    def baseline_check(self) -> list[str]:
        """Sanity-check that the *unmodified* configuration starts and passes tests.

        Returns a list of problems (empty when the baseline is healthy).  The
        paper's methodology presumes a working initial configuration; running
        this before a campaign catches harness misconfiguration early.
        """
        problems: list[str] = []
        files = self.sut.default_configuration()
        result = self.sut.start(files)
        if not result.started:
            problems.append(f"default configuration refused to start: {result.errors}")
            self._safe_stop()
            return problems
        for test in self.sut.functional_tests():
            outcome = test.run(self.sut)
            if not outcome.passed:
                problems.append(f"functional test {outcome.name} fails on the default configuration: {outcome.detail}")
        self._safe_stop()
        return problems

    def _safe_stop(self) -> None:
        try:
            self.sut.stop()
        except Exception:  # pragma: no cover - defensive: stop() should not fail
            pass
