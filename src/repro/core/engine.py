"""The injection engine: ConfErr's end-to-end pipeline.

For one (system under test, error-generator plugin) pair the engine

1. parses the SUT's initial configuration files into system-specific trees,
2. maps them to the plugin's view,
3. asks the plugin for fault scenarios,
4. for each scenario: applies it to a pristine copy of the view, maps the
   mutated view back, serialises the faulty configuration files, starts the
   SUT with them, runs the functional tests, stops the SUT and records the
   outcome,
5. returns the resulting :class:`~repro.core.profile.ResilienceProfile`.

None of these steps require human intervention (paper Section 3).
"""

from __future__ import annotations

import random
import time
from typing import Callable, Sequence

from repro.core.infoset import ConfigSet
from repro.core.profile import InjectionOutcome, InjectionRecord, ResilienceProfile
from repro.core.templates.base import FaultScenario
from repro.errors import ConfErrError, SerializationError, SUTError, TransformError
from repro.parsers.base import get_dialect, serialize_tree
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest

__all__ = ["InjectionEngine"]


class InjectionEngine:
    """Runs injection experiments for one SUT and one plugin."""

    def __init__(
        self,
        sut: SystemUnderTest,
        plugin: ErrorGeneratorPlugin,
        seed: int = 0,
        observer: Callable[[InjectionRecord], None] | None = None,
    ):
        self.sut = sut
        self.plugin = plugin
        self.seed = seed
        #: Optional callback invoked after every injection (progress reporting).
        self.observer = observer

    # ---------------------------------------------------------------- parsing
    def parse_initial_configuration(self) -> ConfigSet:
        """Parse the SUT's default configuration files into a ConfigSet."""
        config_set = ConfigSet()
        for filename, text in self.sut.default_configuration().items():
            dialect = get_dialect(self.sut.dialect_for(filename))
            config_set.add(dialect.parse(text, filename=filename))
        return config_set

    # -------------------------------------------------------------- scenarios
    def generate_scenarios(
        self, config_set: ConfigSet | None = None
    ) -> tuple[ConfigSet, ConfigSet, list[FaultScenario]]:
        """Return (system config set, plugin view set, scenarios)."""
        rng = random.Random(self.seed)
        config_set = config_set or self.parse_initial_configuration()
        view_set = self.plugin.view.transform(config_set)
        scenarios = self.plugin.generate(view_set, rng)
        return config_set, view_set, scenarios

    # -------------------------------------------------------------- injection
    def run(self, scenarios: Sequence[FaultScenario] | None = None) -> ResilienceProfile:
        """Run the full campaign and return the resilience profile."""
        config_set, view_set, generated = self.generate_scenarios()
        profile = ResilienceProfile(self.sut.name)
        for scenario in scenarios if scenarios is not None else generated:
            record = self.run_scenario(scenario, config_set, view_set)
            profile.add(record)
            if self.observer is not None:
                self.observer(record)
        return profile

    def materialize(self, scenario: FaultScenario, config_set: ConfigSet, view_set: ConfigSet) -> dict[str, str]:
        """Produce the faulty configuration files for ``scenario``.

        Raises :class:`~repro.errors.SerializationError` (or
        :class:`~repro.errors.TransformError`) when the mutation cannot be
        expressed in the native format.
        """
        mutated_view = scenario.apply(view_set)
        system_set = self.plugin.view.untransform(mutated_view, config_set)
        return {tree.name: serialize_tree(tree) for tree in system_set}

    def run_scenario(
        self,
        scenario: FaultScenario,
        config_set: ConfigSet,
        view_set: ConfigSet,
    ) -> InjectionRecord:
        """Run a single injection experiment and classify its outcome."""
        started_at = time.perf_counter()

        def record(outcome: InjectionOutcome, messages=(), failed_tests=()) -> InjectionRecord:
            return InjectionRecord(
                scenario_id=scenario.scenario_id,
                category=scenario.category,
                description=scenario.description,
                outcome=outcome,
                messages=list(messages),
                failed_tests=list(failed_tests),
                metadata=dict(scenario.metadata),
                duration_seconds=time.perf_counter() - started_at,
            )

        try:
            files = self.materialize(scenario, config_set, view_set)
        except (SerializationError, TransformError) as exc:
            return record(InjectionOutcome.INJECTION_IMPOSSIBLE, messages=[str(exc)])
        except ConfErrError as exc:
            return record(InjectionOutcome.HARNESS_ERROR, messages=[str(exc)])

        try:
            start_result = self.sut.start(files)
        except SUTError as exc:
            return record(InjectionOutcome.HARNESS_ERROR, messages=[str(exc)])

        if not start_result.started:
            self._safe_stop()
            return record(InjectionOutcome.DETECTED_AT_STARTUP, messages=start_result.errors)

        try:
            failed = []
            messages = list(start_result.warnings)
            for test in self.sut.functional_tests():
                result = test.run(self.sut)
                if not result.passed:
                    failed.append(result.name)
                    if result.detail:
                        messages.append(f"{result.name}: {result.detail}")
            if failed:
                return record(InjectionOutcome.DETECTED_BY_TESTS, messages=messages, failed_tests=failed)
            return record(InjectionOutcome.IGNORED, messages=messages)
        finally:
            self._safe_stop()

    def baseline_check(self) -> list[str]:
        """Sanity-check that the *unmodified* configuration starts and passes tests.

        Returns a list of problems (empty when the baseline is healthy).  The
        paper's methodology presumes a working initial configuration; running
        this before a campaign catches harness misconfiguration early.
        """
        problems: list[str] = []
        files = self.sut.default_configuration()
        result = self.sut.start(files)
        if not result.started:
            problems.append(f"default configuration refused to start: {result.errors}")
            self._safe_stop()
            return problems
        for test in self.sut.functional_tests():
            outcome = test.run(self.sut)
            if not outcome.passed:
                problems.append(f"functional test {outcome.name} fails on the default configuration: {outcome.detail}")
        self._safe_stop()
        return problems

    def _safe_stop(self) -> None:
        try:
            self.sut.stop()
        except Exception:  # pragma: no cover - defensive: stop() should not fail
            pass
