"""Campaign execution strategies: fan scenarios out across workers.

The paper's pitch is that automated injection makes resilience profiling
cheap (Section 5.2 reports seconds per experiment, dominated by starting and
stopping the servers).  Injection experiments are embarrassingly parallel --
each one starts from the pristine configuration and owns its SUT lifecycle --
so a campaign is a classic work-partitioning problem: split the scenario
list, give every worker a private SUT built from the campaign's SUT factory,
and merge the records back **in scenario order** so the resulting profile is
identical whatever the worker count (same records, order and outcomes --
only per-record wall-clock durations differ).

Three strategies are provided:

``SerialExecutor``
    One worker in the calling thread; the reference implementation.
``ThreadPoolCampaignExecutor``
    Threads; best when experiment cost is dominated by waiting on the SUT
    (process startup, sockets) as with real servers.
``ProcessPoolCampaignExecutor``
    Processes; sidesteps the GIL for CPU-bound simulated SUTs, but requires
    the SUT factory, plugin and scenarios to be picklable.
"""

from __future__ import annotations

import pickle
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.profile import InjectionRecord
from repro.core.templates.base import FaultScenario
from repro.errors import CampaignError
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest

__all__ = [
    "WorkerSpec",
    "CampaignExecutor",
    "SerialExecutor",
    "ThreadPoolCampaignExecutor",
    "ProcessPoolCampaignExecutor",
    "available_executors",
    "resolve_executor",
    "partition_scenarios",
]


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild an injection context.

    Workers never share mutable state: each one instantiates its own SUT from
    the factory, re-parses the pristine configuration and derives its own
    working view, then runs its chunk of scenarios serially.  No seed is
    carried: scenario generation (the only randomised stage) happens solely
    in the coordinator, before fan-out.
    """

    sut_factory: Callable[[], SystemUnderTest]
    plugin: ErrorGeneratorPlugin


def run_scenario_chunk(
    spec: WorkerSpec, chunk: Sequence[tuple[int, FaultScenario]]
) -> list[tuple[int, InjectionRecord]]:
    """Stateless unit of work: run ``chunk`` against a private SUT.

    Module-level (hence picklable) so it can cross a process boundary.
    Returns ``(scenario_index, record)`` pairs; the caller merges them back
    into scenario order.
    """
    from repro.core.engine import InjectionEngine

    engine = InjectionEngine(spec.sut_factory(), spec.plugin)
    config_set = engine.parse_initial_configuration()
    view_set = spec.plugin.view.transform(config_set)
    baseline = engine.baseline_files(config_set, view_set)
    return [
        (index, engine.run_scenario(scenario, config_set, view_set, baseline_files=baseline))
        for index, scenario in chunk
    ]


def partition_scenarios(
    scenarios: Sequence[FaultScenario], jobs: int
) -> list[list[tuple[int, FaultScenario]]]:
    """Split scenarios into at most ``jobs`` contiguous, index-tagged chunks.

    Chunk sizes are balanced (they differ by at most one) so every requested
    worker gets work whenever there are at least ``jobs`` scenarios; a naive
    ceil-sized split can leave workers idle (6 scenarios over 4 jobs would
    make 3 chunks of 2 instead of 2+2+1+1).
    """
    indexed = list(enumerate(scenarios))
    if not indexed:
        return []
    jobs = max(1, min(jobs, len(indexed)))
    total = len(indexed)
    bounds = [total * i // jobs for i in range(jobs + 1)]
    return [indexed[bounds[i]:bounds[i + 1]] for i in range(jobs)]


def _merge_in_order(
    chunk_results: Sequence[Sequence[tuple[int, InjectionRecord]]]
) -> list[InjectionRecord]:
    """Deterministic merge: records sorted by original scenario index."""
    flat = [pair for chunk in chunk_results for pair in chunk]
    flat.sort(key=lambda pair: pair[0])
    return [record for _, record in flat]


class CampaignExecutor(ABC):
    """Strategy interface: run scenarios for a worker spec, in scenario order."""

    #: Registry name of the strategy.
    name: str = "executor"

    def __init__(self, jobs: int = 1):
        if jobs < 1:
            raise CampaignError(f"executor needs at least one worker, got jobs={jobs}")
        self.jobs = jobs

    @abstractmethod
    def run(self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]) -> list[InjectionRecord]:
        """Execute every scenario and return records in scenario order."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs})"


class SerialExecutor(CampaignExecutor):
    """Single worker in the calling thread."""

    name = "serial"

    def run(self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]) -> list[InjectionRecord]:
        return _merge_in_order([run_scenario_chunk(spec, list(enumerate(scenarios)))])


class ThreadPoolCampaignExecutor(CampaignExecutor):
    """One thread per chunk, each with a private SUT instance."""

    name = "thread"

    def run(self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]) -> list[InjectionRecord]:
        chunks = partition_scenarios(scenarios, self.jobs)
        if len(chunks) <= 1:
            return _merge_in_order([run_scenario_chunk(spec, chunk) for chunk in chunks])
        with ThreadPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [pool.submit(run_scenario_chunk, spec, chunk) for chunk in chunks]
            return _merge_in_order([future.result() for future in futures])


class ProcessPoolCampaignExecutor(CampaignExecutor):
    """One OS process per chunk; spec and scenarios must be picklable."""

    name = "process"

    def run(self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]) -> list[InjectionRecord]:
        chunks = partition_scenarios(scenarios, self.jobs)
        if len(chunks) <= 1:
            return _merge_in_order([run_scenario_chunk(spec, chunk) for chunk in chunks])
        # Pre-flight the pickle round-trip so an unshippable campaign fails
        # with a pointed message; inside the pool a pickling error would be
        # indistinguishable from a genuine worker-side bug, which must keep
        # its own traceback.
        try:
            pickle.dumps((spec, chunks))
        except Exception as exc:
            raise CampaignError(
                "process executor could not ship the campaign to workers "
                "(SUT factory, plugin and scenarios must be picklable; "
                "closures such as token filters are not): " + str(exc)
            ) from exc
        with ProcessPoolExecutor(max_workers=len(chunks)) as pool:
            futures = [pool.submit(run_scenario_chunk, spec, chunk) for chunk in chunks]
            return _merge_in_order([future.result() for future in futures])


_EXECUTORS: dict[str, type[CampaignExecutor]] = {
    cls.name: cls
    for cls in (SerialExecutor, ThreadPoolCampaignExecutor, ProcessPoolCampaignExecutor)
}


def available_executors() -> list[str]:
    """Names of the registered executor strategies, sorted."""
    return sorted(_EXECUTORS)


def resolve_executor(kind: str | None, jobs: int) -> CampaignExecutor | None:
    """Pick a strategy for (kind, jobs).

    Returns None for the plain in-engine serial path (``jobs <= 1`` with no
    explicit strategy), which keeps single-worker campaigns free of factory
    requirements and pool overhead.
    """
    if kind is None:
        if jobs <= 1:
            return None
        kind = "thread"
    try:
        executor_class = _EXECUTORS[kind]
    except KeyError:
        raise CampaignError(
            f"unknown executor {kind!r}; available: {available_executors()}"
        ) from None
    return executor_class(jobs=jobs)
