"""Campaign execution strategies: stream scenarios through a worker pool.

The paper's pitch is that automated injection makes resilience profiling
cheap (Section 5.2 reports seconds per experiment, dominated by starting and
stopping the servers).  Injection experiments are embarrassingly parallel --
each one starts from the pristine configuration and owns its SUT lifecycle --
but a campaign is more than a work-partitioning problem: it is a *durability*
problem too.  A long campaign must make progress visible (and persistable) as
it happens, not only once every worker has drained its share.

Every strategy therefore implements a streaming protocol:

``stream(spec, scenarios)``
    A generator yielding ``(scenario_index, record)`` pairs **as each
    experiment completes**, in whatever order workers finish them.  The
    engine merges the stream back into scenario order on the fly, so
    observers (progress lines, result-store appends) fire while the campaign
    is still running -- under every strategy, not just the serial one.

``run(spec, scenarios)``
    Back-compatible convenience: drains :meth:`stream` and returns the
    records sorted into scenario order.

Work is handed out in small *blocks* pulled from one shared queue (work
stealing) rather than one static contiguous chunk per worker: a chunk full
of cheap ``DETECTED_AT_STARTUP`` scenarios no longer leaves its worker idle
while another grinds through expensive ``IGNORED`` ones.  Each worker builds
its injection context -- SUT instance, parsed configuration, plugin view and
baseline serialisations -- **once per plugin run** (a persistent pool
initializer for the process strategy), however many blocks it ends up
pulling.

Three strategies are provided:

``SerialExecutor``
    One worker in the calling thread; the reference implementation.
``ThreadPoolCampaignExecutor``
    Threads; best when experiment cost is dominated by waiting on the SUT
    (process startup, sockets) as with real servers.
``ProcessPoolCampaignExecutor``
    Processes; sidesteps the GIL for CPU-bound simulated SUTs, but requires
    the SUT factory, plugin and scenarios to be picklable.
"""

from __future__ import annotations

import pickle
import queue
import threading
import time
import traceback
from abc import ABC, abstractmethod
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, as_completed, wait
from concurrent.futures import TimeoutError as FuturesTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Callable, Iterator, Sequence

from repro.core.faults import FaultPolicy, GuardedWorker, crash_record, timeout_record
from repro.core.profile import InjectionRecord
from repro.core.templates.base import FaultScenario
from repro.errors import CampaignError
from repro.plugins.base import ErrorGeneratorPlugin
from repro.sut.base import SystemUnderTest

__all__ = [
    "WorkerSpec",
    "WorkerContext",
    "CampaignExecutor",
    "SerialExecutor",
    "ThreadPoolCampaignExecutor",
    "ProcessPoolCampaignExecutor",
    "available_executors",
    "resolve_executor",
    "partition_scenarios",
    "resolve_block_size",
    "make_blocks",
    "DEFAULT_MAX_BLOCK",
]

#: Largest block the auto block-size heuristic will hand a worker in one pull.
DEFAULT_MAX_BLOCK = 16

#: Target pulls per worker: enough queue round-trips that a skewed tail can
#: still be rebalanced, few enough that queue overhead stays negligible.
_TARGET_PULLS_PER_WORKER = 4


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker needs to rebuild an injection context.

    Workers never share mutable state: each one instantiates its own SUT from
    the factory, re-parses the pristine configuration and derives its own
    working view, then pulls blocks of scenarios from the shared queue.  No
    seed is carried: scenario generation (the only randomised stage) happens
    solely in the coordinator, before fan-out.

    ``policy`` opts the worker into the fault-tolerance layer
    (:mod:`repro.core.faults`); ``None`` -- the default -- keeps every
    execution path exactly as it was without it.
    """

    sut_factory: Callable[[], SystemUnderTest]
    plugin: ErrorGeneratorPlugin
    policy: FaultPolicy | None = None
    #: Whether workers may take the delta-validation fast path (the prepared
    #: baseline is keyed by file content, so suite cells sharing a system
    #: reuse it across plugin runs).
    incremental: bool = True


class WorkerContext:
    """Per-worker injection context, built once per (worker, plugin run).

    Bundles the private SUT, the parsed pristine configuration, the plugin
    view and the baseline serialisation cache so that a worker pays the
    setup cost once however many blocks it pulls from the queue.
    """

    def __init__(self, spec: WorkerSpec):
        from repro.core.engine import InjectionEngine

        self.engine = InjectionEngine(
            spec.sut_factory(), spec.plugin, incremental=spec.incremental
        )
        self.config_set = self.engine.parse_initial_configuration()
        self.view_set = spec.plugin.view.transform(self.config_set)
        self.baseline = self.engine.baseline_files(self.config_set, self.view_set)
        self.prepared = self.engine.prepare_incremental(self.config_set, self.view_set)

    def run(self, scenario: FaultScenario) -> InjectionRecord:
        """Run one injection experiment against this worker's private SUT."""
        return self.engine.run_scenario(
            scenario,
            self.config_set,
            self.view_set,
            baseline_files=self.baseline,
            incremental=self.prepared,
        )


def partition_scenarios(
    scenarios: Sequence[FaultScenario], jobs: int
) -> list[list[tuple[int, FaultScenario]]]:
    """Split scenarios into at most ``jobs`` contiguous, index-tagged chunks.

    Chunk sizes are balanced (they differ by at most one) so every requested
    worker gets work whenever there are at least ``jobs`` scenarios; a naive
    ceil-sized split can leave workers idle (6 scenarios over 4 jobs would
    make 3 chunks of 2 instead of 2+2+1+1).

    This is the *static* partitioning the pre-streaming executors used; it is
    kept as the reference the work-stealing benchmarks compare against (a
    static chunk gates the campaign on its most expensive member).
    """
    indexed = list(enumerate(scenarios))
    if not indexed:
        return []
    jobs = max(1, min(jobs, len(indexed)))
    total = len(indexed)
    bounds = [total * i // jobs for i in range(jobs + 1)]
    return [indexed[bounds[i]:bounds[i + 1]] for i in range(jobs)]


def resolve_block_size(total: int, jobs: int, block_size: int | None = None) -> int:
    """Scenarios handed to a worker per queue pull.

    An explicit ``block_size`` wins (must be positive).  The default aims for
    ~``_TARGET_PULLS_PER_WORKER`` pulls per worker, capped at
    :data:`DEFAULT_MAX_BLOCK`: small enough that one expensive region of the
    scenario sequence spreads across workers, large enough that queue traffic
    stays negligible next to an injection experiment.
    """
    if block_size is not None:
        if block_size < 1:
            raise CampaignError(f"block_size must be a positive integer, got {block_size}")
        return block_size
    if total <= 0:
        return 1
    return max(1, min(DEFAULT_MAX_BLOCK, total // (max(1, jobs) * _TARGET_PULLS_PER_WORKER)))


def make_blocks(indexed: Sequence, block_size: int) -> list[list]:
    """Cut a sequence into contiguous blocks of ``block_size``.

    The one block-cutting rule of the work-stealing pipeline: the thread
    strategy feeds it ``(index, scenario)`` pairs, the process strategy bare
    indices, and the benchmark schedule simulations ``(index, cost)`` pairs
    -- so all three always agree on block boundaries.
    """
    return [list(indexed[i:i + block_size]) for i in range(0, len(indexed), block_size)]


def _merge_in_order(
    chunk_results: Sequence[Sequence[tuple[int, InjectionRecord]]]
) -> list[InjectionRecord]:
    """Deterministic merge: records sorted by original scenario index."""
    flat = [pair for chunk in chunk_results for pair in chunk]
    flat.sort(key=lambda pair: pair[0])
    return [record for _, record in flat]


def _make_runner(spec: WorkerSpec) -> "WorkerContext | GuardedWorker":
    """One worker's scenario runner, honouring the spec's fault policy.

    Without a policy this is a plain :class:`WorkerContext`; with one, a
    :class:`~repro.core.faults.GuardedWorker` wrapping a context factory, so
    hung or crashed contexts can be abandoned and rebuilt mid-run.  Both
    expose the same ``run(scenario) -> record`` surface.
    """
    if spec.policy is None:
        return WorkerContext(spec)
    return GuardedWorker(lambda: WorkerContext(spec), spec.policy)


def _close_runner(runner: "WorkerContext | GuardedWorker | None") -> None:
    """Release a runner's helper thread, if it has one."""
    if isinstance(runner, GuardedWorker):
        runner.close()


def _serial_stream(
    spec: WorkerSpec, indexed: Sequence[tuple[int, FaultScenario]]
) -> Iterator[tuple[int, InjectionRecord]]:
    """Single-worker reference stream: one context, records in scenario order."""
    runner = _make_runner(spec)
    try:
        for index, scenario in indexed:
            yield index, runner.run(scenario)
    finally:
        _close_runner(runner)


class CampaignExecutor(ABC):
    """Strategy interface: stream scenario records as experiments complete."""

    #: Registry name of the strategy.
    name: str = "executor"

    def __init__(self, jobs: int = 1, block_size: int | None = None):
        if jobs < 1:
            raise CampaignError(f"executor needs at least one worker, got jobs={jobs}")
        if block_size is not None and block_size < 1:
            raise CampaignError(f"block_size must be a positive integer, got {block_size}")
        self.jobs = jobs
        self.block_size = block_size

    @abstractmethod
    def stream(
        self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]
    ) -> Iterator[tuple[int, InjectionRecord]]:
        """Yield ``(scenario_index, record)`` as each experiment completes.

        Pairs arrive in completion order, not scenario order; every index in
        ``range(len(scenarios))`` is yielded exactly once.  A worker failure
        raises from the generator after in-flight work has settled.
        """

    def run(self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]) -> list[InjectionRecord]:
        """Execute every scenario and return records in scenario order."""
        return _merge_in_order([list(self.stream(spec, scenarios))])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(jobs={self.jobs}, block_size={self.block_size})"


class SerialExecutor(CampaignExecutor):
    """Single worker in the calling thread."""

    name = "serial"

    def stream(
        self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]
    ) -> Iterator[tuple[int, InjectionRecord]]:
        return _serial_stream(spec, list(enumerate(scenarios)))


class _WorkerFailure:
    """Envelope carrying a worker-side exception to the consuming thread.

    The formatted worker traceback rides along so the real failure site
    survives transits that strip the exception's own traceback object --
    which is the rule, not the exception, once process boundaries and
    re-raising from stashes are involved.
    """

    __slots__ = ("exception", "traceback_text")

    def __init__(self, exception: BaseException, traceback_text: str | None = None):
        self.exception = exception
        self.traceback_text = traceback_text

    def reraise(self) -> None:
        """Raise the worker's exception, re-attaching a lost failure site.

        When the exception object still carries its traceback (same-process
        thread workers) it is raised untouched; when that traceback was lost
        in transit, the formatted worker-side text is chained on as the
        cause so diagnostics keep pointing at the real frame.
        """
        if self.exception.__traceback__ is None and self.traceback_text:
            raise self.exception from CampaignError(
                "worker-side traceback:\n" + self.traceback_text.rstrip()
            )
        raise self.exception


#: Queue sentinel: one per worker thread, announcing that it has drained.
_WORKER_DONE = object()


class ThreadPoolCampaignExecutor(CampaignExecutor):
    """Long-lived worker threads pulling scenario blocks from a shared queue.

    Each thread builds one :class:`WorkerContext` (private SUT, parse, view,
    baseline) and then loops: pull the next block, run its scenarios, push
    each ``(index, record)`` onto the result queue the moment it exists.
    The shared block queue is what makes the schedule work-stealing: a
    worker that lands on cheap scenarios simply pulls again.
    """

    name = "thread"

    def stream(
        self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]
    ) -> Iterator[tuple[int, InjectionRecord]]:
        indexed = list(enumerate(scenarios))
        if not indexed:
            return
        workers = min(self.jobs, len(indexed))
        if workers <= 1:
            yield from _serial_stream(spec, indexed)
            return

        block_size = resolve_block_size(len(indexed), workers, self.block_size)
        block_list = make_blocks(indexed, block_size)
        # a worker's unit of work is one block pull: never start more workers
        # than blocks, or the surplus pay the full per-worker context setup
        # only to find the queue already drained
        workers = min(workers, len(block_list))
        blocks: queue.SimpleQueue = queue.SimpleQueue()
        for block in block_list:
            blocks.put(block)
        results: queue.SimpleQueue = queue.SimpleQueue()
        stop = threading.Event()

        def work() -> None:
            runner: WorkerContext | GuardedWorker | None = None
            try:
                runner = _make_runner(spec)
                while not stop.is_set():
                    try:
                        block = blocks.get_nowait()
                    except queue.Empty:
                        break
                    for index, scenario in block:
                        if stop.is_set():
                            return
                        results.put((index, runner.run(scenario)))
            except BaseException as exc:  # noqa: BLE001 - must cross the thread
                results.put(_WorkerFailure(exc, traceback.format_exc()))
            finally:
                _close_runner(runner)
                results.put(_WORKER_DONE)

        threads = [
            threading.Thread(target=work, name=f"conferr-worker-{i}", daemon=True)
            for i in range(workers)
        ]
        failure: _WorkerFailure | None = None
        try:
            for thread in threads:
                thread.start()
            done = 0
            while done < len(threads):
                item = results.get()
                if item is _WORKER_DONE:
                    done += 1
                elif isinstance(item, _WorkerFailure):
                    if failure is None:
                        failure = item
                    stop.set()
                elif failure is None:
                    yield item
            if failure is not None:
                failure.reraise()
        finally:
            # Consumer gone (exhausted, failed, or abandoned mid-stream):
            # workers finish their current experiment and exit.
            stop.set()
            for thread in threads:
                thread.join()


# ----------------------------------------------------------- process workers
#: Per-process worker state, installed once by the pool initializer so that
#: every block task reuses the same SUT/parse/view/baseline context.  With a
#: fault policy on the spec the runner is a GuardedWorker, so ordinary hangs
#: are resolved *inside* the worker process and never reach the coordinator.
_PROCESS_CONTEXT: WorkerContext | GuardedWorker | None = None
_PROCESS_SCENARIOS: tuple[FaultScenario, ...] = ()
_PROCESS_INIT_ERROR: str | None = None


def _initialize_process_worker(spec: WorkerSpec, scenarios: tuple[FaultScenario, ...]) -> None:
    """Pool initializer: build this process's injection context exactly once."""
    global _PROCESS_CONTEXT, _PROCESS_SCENARIOS, _PROCESS_INIT_ERROR
    try:
        _PROCESS_CONTEXT = _make_runner(spec)
        _PROCESS_SCENARIOS = tuple(scenarios)
        _PROCESS_INIT_ERROR = None
    except BaseException as exc:  # noqa: BLE001 - a raising initializer breaks
        # the whole pool with an opaque BrokenProcessPool; stash the cause and
        # report it from the first block task instead, with a real message
        _PROCESS_CONTEXT = None
        _PROCESS_INIT_ERROR = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"


def _run_scenario_block(indices: Sequence[int]) -> list[tuple[int, InjectionRecord]]:
    """Block task: run the given scenario indices in this worker's context."""
    if _PROCESS_CONTEXT is None:
        raise CampaignError(
            "process worker failed to build its injection context: "
            + (_PROCESS_INIT_ERROR or "initializer did not run")
        )
    return [(index, _PROCESS_CONTEXT.run(_PROCESS_SCENARIOS[index])) for index in indices]


class ProcessPoolCampaignExecutor(CampaignExecutor):
    """OS processes pulling scenario blocks from the pool's shared call queue.

    The pool initializer ships ``(spec, scenarios)`` once per worker process
    and builds the injection context there; block tasks then carry only
    scenario *indices*, so per-block pickling cost is a few integers.  Block
    results stream back as their futures complete.
    """

    name = "process"

    def stream(
        self, spec: WorkerSpec, scenarios: Sequence[FaultScenario]
    ) -> Iterator[tuple[int, InjectionRecord]]:
        scenario_list = list(scenarios)
        if not scenario_list:
            return
        workers = min(self.jobs, len(scenario_list))
        if workers <= 1:
            yield from _serial_stream(spec, list(enumerate(scenario_list)))
            return
        # Pre-flight the pickle round-trip so an unshippable campaign fails
        # with a pointed message; inside the pool a pickling error would be
        # indistinguishable from a genuine worker-side bug, which must keep
        # its own traceback.
        try:
            pickle.dumps((spec, scenario_list))
        except Exception as exc:
            raise CampaignError(
                "process executor could not ship the campaign to workers "
                "(SUT factory, plugin and scenarios must be picklable; "
                "closures such as token filters are not): " + str(exc)
            ) from exc

        if spec.policy is not None:
            yield from self._tolerant_stream(spec, scenario_list, workers, spec.policy)
            return

        block_size = resolve_block_size(len(scenario_list), workers, self.block_size)
        index_blocks = make_blocks(range(len(scenario_list)), block_size)
        pool = ProcessPoolExecutor(
            max_workers=min(workers, len(index_blocks)),
            initializer=_initialize_process_worker,
            initargs=(spec, tuple(scenario_list)),
        )
        try:
            futures = [pool.submit(_run_scenario_block, block) for block in index_blocks]
            for future in as_completed(futures):
                yield from future.result()
        finally:
            # Abandoned mid-stream (consumer failure/kill): drop the queued
            # blocks, wait only for the ones already running.
            pool.shutdown(wait=True, cancel_futures=True)

    # ------------------------------------------------- fault-tolerant variant
    def _spawn_pool(
        self, spec: WorkerSpec, scenario_list: list[FaultScenario], workers: int
    ) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_initialize_process_worker,
            initargs=(spec, tuple(scenario_list)),
        )

    def _tolerant_stream(
        self,
        spec: WorkerSpec,
        scenario_list: list[FaultScenario],
        workers: int,
        policy: FaultPolicy,
    ) -> Iterator[tuple[int, InjectionRecord]]:
        """Process stream that survives worker death and wedged workers.

        Ordinary hangs never surface here: each worker process runs its
        scenarios under an in-process :class:`GuardedWorker`, which turns
        them into ``TIMEOUT`` records.  What is left for the coordinator:

        * **worker death** (``os._exit``, segfault, OOM-kill).  The stdlib
          pool declares itself wholly broken, so every unfinished block --
          guilty and innocent alike -- is lost.  Blocks are submitted
          through a bounded window to cap that blast radius, the pool is
          respawned for the remaining queue, and the lost scenarios go to a
          *suspect* list.
        * **a wedged worker** (hung beyond the reach of its own watchdog
          thread).  Detected by the coordinator-side hard deadline; the
          pool's processes are killed outright and in-flight blocks become
          suspects.

        Suspects are then re-run one at a time in **singleton pools**: an
        innocent scenario simply succeeds in isolation (its record identical
        to a fault-free run's), while a guilty one demonstrably kills its
        private pool and -- after ``max_retries`` isolated re-attempts with
        seeded backoff -- is quarantined with a ``HARNESS_ERROR`` record.
        Attribution is therefore exact: no innocent scenario is ever
        quarantined for a neighbour's crash.
        """
        total = len(scenario_list)
        block_size = resolve_block_size(total, workers, self.block_size)
        pending_blocks: deque[list[int]] = deque(make_blocks(range(total), block_size))
        suspects: deque[int] = deque()
        window = workers * 2

        while pending_blocks:
            pool = self._spawn_pool(spec, scenario_list, min(workers, len(pending_blocks)))
            in_flight: dict = {}
            broken = False
            try:
                while (pending_blocks or in_flight) and not broken:
                    while pending_blocks and len(in_flight) < window:
                        block = pending_blocks.popleft()
                        in_flight[pool.submit(_run_scenario_block, block)] = block
                    deadline = policy.block_deadline(
                        max(len(block) for block in in_flight.values())
                    )
                    done, _ = wait(set(in_flight), timeout=deadline, return_when=FIRST_COMPLETED)
                    if not done:
                        # No progress within the hard deadline: the workers
                        # are wedged beyond their own watchdogs.  Kill them.
                        _terminate_pool(pool)
                        for block in in_flight.values():
                            suspects.extend(block)
                        in_flight = {}
                        break
                    for future in done:
                        block = in_flight.pop(future)
                        try:
                            yield from future.result()
                        except BrokenProcessPool:
                            suspects.extend(block)
                            broken = True
                # Pool broke: the stdlib fails *every* unfinished future, but
                # ones that finished before the break still hold real results.
                for future, block in in_flight.items():
                    try:
                        yield from future.result()
                    except BrokenProcessPool:
                        suspects.extend(block)
            finally:
                pool.shutdown(wait=False, cancel_futures=True)

        yield from self._isolate_suspects(spec, scenario_list, suspects, policy)

    def _isolate_suspects(
        self,
        spec: WorkerSpec,
        scenario_list: list[FaultScenario],
        suspects: deque,
        policy: FaultPolicy,
    ) -> Iterator[tuple[int, InjectionRecord]]:
        """Re-run each suspect alone in a singleton pool for exact blame."""
        attempts: dict[int, int] = {}
        while suspects:
            index = suspects.popleft()
            scenario = scenario_list[index]
            previous = attempts.get(index, 0)
            if previous:
                time.sleep(policy.backoff_delay(scenario.scenario_id, previous))
            pool = self._spawn_pool(spec, scenario_list, 1)
            try:
                future = pool.submit(_run_scenario_block, [index])
                try:
                    pairs = future.result(timeout=policy.block_deadline(1))
                except BrokenProcessPool:
                    attempts[index] = previous + 1
                    if attempts[index] > policy.max_retries:
                        yield index, crash_record(
                            scenario,
                            "worker process died; reproduced in isolation",
                            retries=policy.max_retries,
                        )
                    else:
                        suspects.append(index)
                except FuturesTimeoutError:
                    _terminate_pool(pool)
                    yield index, timeout_record(
                        scenario, policy.timeout_seconds, wedged=True
                    )
                else:
                    yield from pairs
            finally:
                pool.shutdown(wait=False, cancel_futures=True)


def _terminate_pool(pool: ProcessPoolExecutor) -> None:
    """Kill a pool whose workers are wedged beyond cooperative shutdown.

    Reaches into the executor's private process table -- there is no public
    API for "stop waiting for these workers" -- and terminates each one, so
    ``shutdown`` cannot block on a process that will never answer.
    """
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except Exception:  # pragma: no cover - already-dead worker
            pass
    pool.shutdown(wait=False, cancel_futures=True)


_EXECUTORS: dict[str, type[CampaignExecutor]] = {
    cls.name: cls
    for cls in (SerialExecutor, ThreadPoolCampaignExecutor, ProcessPoolCampaignExecutor)
}


def available_executors() -> list[str]:
    """Names of the registered executor strategies, sorted."""
    return sorted(_EXECUTORS)


def resolve_executor(
    kind: str | None, jobs: int, block_size: int | None = None
) -> CampaignExecutor | None:
    """Pick a strategy for (kind, jobs, block_size).

    Returns None for the plain in-engine serial path (``jobs <= 1`` with no
    explicit strategy), which keeps single-worker campaigns free of factory
    requirements and pool overhead.
    """
    if kind is None:
        if jobs <= 1:
            return None
        kind = "thread"
    try:
        executor_class = _EXECUTORS[kind]
    except KeyError:
        raise CampaignError(
            f"unknown executor {kind!r}; available: {available_executors()}"
        ) from None
    return executor_class(jobs=jobs, block_size=block_size)
