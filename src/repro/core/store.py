"""Persistent result store: durable, resumable campaign records.

A :class:`ResultStore` is a directory holding

* ``manifest.json`` -- one JSON document describing the run that produced
  the records: seed, systems, plugin configurations, keyboard layout and
  executor settings.  The manifest is what makes a store *resumable*: a
  later invocation can verify it is about to continue the same experiment
  (same seed and plugin configuration) before skipping work.
* ``<system>.jsonl`` -- one append-only JSON-Lines file per system.  Each
  line is ``{"campaign": <name>, "record": <InjectionRecord.to_dict()>}``;
  records are appended (and flushed) as they land.
* ``systems.json`` -- the system-key -> file-name index, written before the
  first record of each system.  ``filename_for`` sanitisation is lossy
  (``mysql/full`` becomes ``mysql_full.jsonl``), so without the index a
  store whose manifest is missing could not map its files back to keys.

Durability guarantee, precisely: the engine releases records to the store
in scenario order as the in-order front of the sequence completes, under
*every* executor strategy.  A killed run therefore leaves the contiguous
prefix of already-released records on disk and loses only the in-flight
tail -- the experiments still running plus any that finished out of order
ahead of a still-running earlier scenario (on the order of ``jobs x
block_size`` records, exactly one for a serial run).  Resuming replays
only the scenarios whose records are missing.

The append-only layout is deliberate: injection campaigns are long, every
record is immutable once classified, and a crashed or killed run must leave
a readable prefix behind.  Trailing partial lines (the one write a crash can
tear) are ignored on load.  One append-mode handle is cached per system (a
record write is a single buffered write + flush, not an open/close); call
:meth:`close` -- or use the store as a context manager -- to release the
handles deterministically.  ``close`` is idempotent.

Concurrency contract, precisely:

* **One writer per store directory.**  The first write (manifest or record
  append) takes an advisory ``store.lock`` file naming the writing process;
  a second writer on the same directory fails fast with a pointed
  :class:`StoreError` instead of silently interleaving appends.  The lock
  is released by :meth:`close` and broken automatically when its holder is
  a dead process on this host (a ``kill -9`` must not brick the store).
* **Any number of concurrent readers.**  Readers (``iter_records``,
  ``load_profiles`` and every ``--from-store`` renderer) take no lock and
  never block the writer.  Because a record append is a single buffered
  ``write()`` of one complete line followed by a flush, a reader streaming
  the file mid-append sees only complete records plus at most one torn
  trailing line -- which :meth:`iter_records` already tolerates.  Live
  progress endpoints poll exactly this way.
"""

from __future__ import annotations

import json
import os
import re
import socket
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.profile import InjectionRecord, ResilienceProfile
from repro.errors import StoreError

__all__ = [
    "ResultStore",
    "MANIFEST_VERSION",
    "QUARANTINE_NAME",
    "LOCK_NAME",
    "filename_for",
    "FileCheck",
    "StoreReport",
    "diff_stores",
]

#: Bump when the on-disk layout changes incompatibly.
MANIFEST_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_SYSTEMS_INDEX_NAME = "systems.json"
#: Advisory writer-lock file: holds ``{"pid", "host", "argv"}`` of the one
#: process allowed to append to this store directory.
LOCK_NAME = "store.lock"
#: Manifest of scenarios the fault-tolerance layer gave up on, kept next to
#: -- never inside -- the per-system record files: the main stream stays a
#: clean record of real experiment outcomes, and a resumed run can decide to
#: re-attempt or keep skipping the quarantined ones.
QUARANTINE_NAME = "quarantine.jsonl"
#: Suffix :meth:`ResultStore.repair` moves unreadable lines under; chosen so
#: ``*.jsonl`` globs (and therefore :meth:`ResultStore.systems`) skip it.
_CORRUPT_SUFFIX = ".corrupt"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


def filename_for(system: str) -> str:
    """Map a system key to a safe JSONL file name.

    Public because spec validation must refuse two system labels whose
    sanitized filenames collide (their records would interleave in one file).
    """
    safe = _UNSAFE.sub("_", system)
    return f"{safe}.jsonl"


@dataclass
class FileCheck:
    """Verification result for one JSONL file in a store."""

    system: str
    path: str
    records: int = 0
    corrupt_lines: list[int] = field(default_factory=list)
    torn_tail: bool = False

    @property
    def clean(self) -> bool:
        return not self.corrupt_lines and not self.torn_tail


@dataclass
class StoreReport:
    """Outcome of :meth:`ResultStore.verify` or :meth:`ResultStore.repair`."""

    root: str
    files: list[FileCheck] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)
    #: True when produced by :meth:`ResultStore.repair` (files were rewritten).
    repaired: bool = False

    @property
    def clean(self) -> bool:
        return not self.problems and all(check.clean for check in self.files)

    def summary(self) -> str:
        """Human-readable multi-line report."""
        action = "repaired" if self.repaired else "verified"
        lines = [f"store {self.root}: {action}, {'clean' if self.clean else 'problems found'}"]
        for check in self.files:
            status = []
            if check.corrupt_lines:
                status.append(
                    f"{len(check.corrupt_lines)} corrupt line(s) at "
                    + ", ".join(str(n) for n in check.corrupt_lines[:5])
                    + ("..." if len(check.corrupt_lines) > 5 else "")
                )
            if check.torn_tail:
                status.append("torn trailing line")
            detail = "; ".join(status) if status else "clean"
            lines.append(f"  {check.path}: {check.records} record(s), {detail}")
        for problem in self.problems:
            lines.append(f"  problem: {problem}")
        return "\n".join(lines)


class ResultStore:
    """Append-only, per-system JSONL storage for injection records."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._manifest_cache: dict[str, Any] | None = None
        #: One cached append-mode handle per system; opening implies the
        #: file's torn tail (if any) has been repaired.
        self._handles: dict[str, Any] = {}
        #: Cached append handle for ``quarantine.jsonl`` (shared by systems).
        self._quarantine_handle: Any = None
        #: Cached system-key -> file-name index (``systems.json``).
        self._systems_index: dict[str, str] | None = None
        #: Whether this instance holds the advisory ``store.lock``.
        self._lock_owned = False

    def close(self) -> None:
        """Close cached append handles and release the writer lock.

        Idempotent: closing an already-closed (or never-written) store is a
        no-op, and appending after a close simply reopens the handles and
        re-acquires the lock.
        """
        handles, self._handles = self._handles, {}
        quarantine, self._quarantine_handle = self._quarantine_handle, None
        if quarantine is not None:
            handles["\x00quarantine"] = quarantine
        for handle in handles.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - close() on flushed appends
                pass
        self._release_writer_lock()

    # -------------------------------------------------------------- writer lock
    @property
    def lock_path(self) -> Path:
        return self.root / LOCK_NAME

    def _acquire_writer_lock(self) -> None:
        """Take the advisory one-writer-per-directory lock (idempotent).

        A live competing writer is a hard error: two appenders would
        interleave records in the same JSONL files.  A lock held by a dead
        process on this host (crash, ``kill -9``) is broken and re-taken; a
        lock from another host cannot be verified and is honoured.
        """
        if self._lock_owned:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            {"pid": os.getpid(), "host": socket.gethostname()}, sort_keys=True
        )
        for _attempt in range(16):  # bounded: stale-lock breaking can race
            try:
                fd = os.open(self.lock_path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self._read_lock_holder()
                if holder is not None and not self._holder_is_dead(holder):
                    raise StoreError(
                        f"result store {self.root} is locked by another writer "
                        f"(pid {holder.get('pid')} on {holder.get('host')}, "
                        f"{self.lock_path}); a store accepts one concurrent "
                        "writer -- wait for it to finish, or remove the lock "
                        "file if that process is truly gone"
                    )
                try:  # stale (dead holder) or unreadable: break it and retry
                    self.lock_path.unlink()
                except FileNotFoundError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            self._lock_owned = True
            return
        raise StoreError(  # pragma: no cover - needs a pathological unlink race
            f"could not acquire {self.lock_path} after repeated attempts"
        )

    def _read_lock_holder(self) -> dict[str, Any] | None:
        """The lock file's ``{"pid", "host"}`` payload, or None when unreadable."""
        try:
            raw = json.loads(self.lock_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        return raw if isinstance(raw, dict) else None

    @staticmethod
    def _holder_is_dead(holder: Mapping[str, Any]) -> bool:
        """Whether the lock's holder is verifiably gone (same host, dead pid)."""
        if holder.get("host") != socket.gethostname():
            return False  # another host: cannot verify, assume alive
        pid = holder.get("pid")
        if not isinstance(pid, int) or pid <= 0:
            return True  # malformed payload: nobody to honour
        if pid == os.getpid():
            return False  # another ResultStore instance in this very process
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return True
        except PermissionError:  # pragma: no cover - other user's live process
            return False
        return False

    def _release_writer_lock(self) -> None:
        if not self._lock_owned:
            return
        self._lock_owned = False
        try:
            self.lock_path.unlink()
        except OSError:  # pragma: no cover - lock dir removed underneath us
            pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def exists(self) -> bool:
        """Whether this store has been initialised (has a manifest)."""
        return self.manifest_path.is_file()

    def ensure_fresh(self) -> "ResultStore":
        """Refuse to write a new run over an existing store; returns self."""
        if self.exists():
            raise StoreError(
                f"result store {self.root} already exists; choose a fresh "
                "directory (resume it, or re-render it with its from-store reader)"
            )
        return self

    def write_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Initialise the store directory and persist the run manifest."""
        self._acquire_writer_lock()
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"version": MANIFEST_VERSION, **manifest}
        self.manifest_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self._manifest_cache = payload

    def read_manifest(self) -> dict[str, Any]:
        """Load the manifest; raises :class:`StoreError` when absent or corrupt.

        The parsed manifest is cached on the instance: the manifest is
        written once per run, while loading a store reads it many times.
        """
        if self._manifest_cache is not None:
            return self._manifest_cache
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreError(f"no result store at {self.root} (missing {_MANIFEST_NAME})") from None
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt manifest in {self.root}: {exc}") from exc
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"result store {self.root} has manifest version {version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        self._manifest_cache = manifest
        return manifest

    def require_kind(self, *kinds: str) -> dict[str, Any]:
        """Check the store was produced by one of the given run kinds.

        Guards the ``--from-store`` readers: rendering Table 1 from, say, a
        table3 store would produce a plausible-looking but wrong artefact.
        Returns the manifest on success.
        """
        manifest = self.read_manifest()
        kind = manifest.get("kind")
        if kind not in kinds:
            raise StoreError(
                f"result store {self.root} holds a {kind!r} run; "
                f"this reader needs one of: {', '.join(kinds)}"
            )
        return manifest

    def check_compatible(self, manifest: Mapping[str, Any]) -> None:
        """Verify a resume continues the experiment described by ``manifest``.

        When both the stored and the offered manifest embed a serialized
        :class:`~repro.core.spec.ExperimentSpec`, compatibility is a
        structured spec diff that reports the exact offending paths (worker
        settings and the store location are ignored -- profiles are
        executor-invariant).  Otherwise the legacy field-by-field comparison
        applies: any difference in seed, systems or plugin configuration
        means the stored scenario ids cannot be trusted to match, so the
        resume is refused with a pointed message.
        """
        stored = self.read_manifest()
        # the run kind guards the spec path too: a table1 store and a suite
        # spec may serialize identically but derive per-campaign seeds
        # differently, so resuming across kinds would double-populate records
        if stored.get("kind") != manifest.get("kind"):
            raise StoreError(
                f"store {self.root} was produced by a different run: "
                f"kind is {stored.get('kind')!r} on disk "
                f"but {manifest.get('kind')!r} now"
            )
        stored_spec, offered_spec = stored.get("spec"), manifest.get("spec")
        if isinstance(stored_spec, Mapping) and isinstance(offered_spec, Mapping):
            from repro.core.spec import diff_spec_dicts

            diffs = diff_spec_dicts(stored_spec, offered_spec)
            if diffs:
                raise StoreError(
                    f"store {self.root} was produced by a different experiment: "
                    + "; ".join(diffs[:5])
                    + ("; ..." if len(diffs) > 5 else "")
                )
            return
        # "kind" is already handled by the early guard above
        for field in ("seed", "systems", "plugins", "layout"):
            if stored.get(field) != manifest.get(field):
                raise StoreError(
                    f"store {self.root} was produced by a different run: "
                    f"{field} is {stored.get(field)!r} on disk "
                    f"but {manifest.get(field)!r} now"
                )

    # ------------------------------------------------------------------ records
    def path_for(self, system: str) -> Path:
        return self.root / filename_for(system)

    def append(self, system: str, campaign: str, record: InjectionRecord) -> None:
        """Append one record; flushed immediately so interrupts lose at most one.

        The append-mode handle is opened once per system and cached (a
        campaign appends thousands of records; open/close per record costs
        more than the write).  First open also repairs a torn tail and
        registers the system key in ``systems.json``.

        Records stamped ``metadata["quarantined"]`` by the fault-tolerance
        layer are routed to ``quarantine.jsonl`` instead of the system's
        record file: they describe harness faults, not experiment outcomes,
        and the main stream must stay byte-comparable to a fault-free run.
        """
        if record.metadata.get("quarantined"):
            self._append_quarantined(system, campaign, record)
            return
        handle = self._handles.get(system)
        if handle is None:
            self._acquire_writer_lock()
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(system)
            # A prior crash may have torn the final line mid-write; appending
            # straight after it would weld this record onto the garbage and
            # turn it into an unreadable *interior* line.  Drop the torn tail
            # instead: its record was never counted as completed (iter_records
            # skips it), so the scenario simply runs again and re-appends.
            self._truncate_torn_tail(path)
            self._register_system(system)
            handle = open(path, "ab")
            self._handles[system] = handle
        line = json.dumps({"campaign": campaign, "record": record.to_dict()})
        handle.write(line.encode("utf-8") + b"\n")
        handle.flush()

    @staticmethod
    def _truncate_torn_tail(path: Path) -> None:
        """Truncate ``path`` back to the end of its last complete line."""
        try:
            handle = open(path, "rb+")
        except FileNotFoundError:
            return
        with handle:
            size = handle.seek(0, 2)
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            position, last_newline, chunk = size, -1, 4096
            while position > 0 and last_newline < 0:
                start = max(0, position - chunk)
                handle.seek(start)
                data = handle.read(position - start)
                index = data.rfind(b"\n")
                if index >= 0:
                    last_newline = start + index
                position = start
            handle.truncate(last_newline + 1 if last_newline >= 0 else 0)

    def iter_records(self, system: str) -> Iterator[tuple[str, InjectionRecord]]:
        """Yield ``(campaign, record)`` pairs for one system, in append order.

        The file is streamed line by line (a long campaign's JSONL can dwarf
        memory; loading a store must not slurp it whole).  A torn trailing
        line (crash mid-write) is skipped silently; a corrupt line elsewhere
        raises :class:`StoreError` since silently dropping interior records
        would fake completed work on resume -- whether a corrupt line is the
        tail is only known once the next line (any line, even a blank one)
        proves it interior, so the error is raised one line late.
        """
        path = self.path_for(system)
        if not path.is_file():
            return
        pending: tuple[int, Exception] | None = None  # corrupt line awaiting a tail verdict
        with open(path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                if pending is not None:
                    corrupt_number, exc = pending
                    raise StoreError(
                        f"corrupt record at {path}:{corrupt_number}: {exc}"
                    ) from exc
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    record = InjectionRecord.from_dict(entry["record"])
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    pending = (number, exc)  # torn final write, unless more follows
                    continue
                yield str(entry.get("campaign", "")), record

    def completed_ids(self, system: str) -> set[tuple[str, str]]:
        """``(campaign, scenario_id)`` pairs already on disk for one system."""
        return {(campaign, record.scenario_id) for campaign, record in self.iter_records(system)}

    # --------------------------------------------------------------- quarantine
    @property
    def quarantine_path(self) -> Path:
        return self.root / QUARANTINE_NAME

    def _append_quarantined(self, system: str, campaign: str, record: InjectionRecord) -> None:
        if self._quarantine_handle is None:
            self._acquire_writer_lock()
            self.root.mkdir(parents=True, exist_ok=True)
            self._truncate_torn_tail(self.quarantine_path)
            self._quarantine_handle = open(self.quarantine_path, "ab")
        line = json.dumps({"system": system, "campaign": campaign, "record": record.to_dict()})
        self._quarantine_handle.write(line.encode("utf-8") + b"\n")
        self._quarantine_handle.flush()

    def iter_quarantined(
        self, system: str | None = None
    ) -> Iterator[tuple[str, str, InjectionRecord]]:
        """Yield ``(system, campaign, record)`` from the quarantine manifest.

        Same torn-tail tolerance as :meth:`iter_records`: a torn final line
        is skipped, a corrupt interior line raises.
        """
        path = self.quarantine_path
        if not path.is_file():
            return
        pending: tuple[int, Exception] | None = None
        with open(path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                if pending is not None:
                    corrupt_number, exc = pending
                    raise StoreError(
                        f"corrupt record at {path}:{corrupt_number}: {exc}"
                    ) from exc
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    record = InjectionRecord.from_dict(entry["record"])
                    entry_system = str(entry["system"])
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    pending = (number, exc)
                    continue
                if system is None or entry_system == system:
                    yield entry_system, str(entry.get("campaign", "")), record

    def quarantined_ids(self, system: str) -> set[tuple[str, str]]:
        """``(campaign, scenario_id)`` pairs quarantined for one system."""
        return {
            (campaign, record.scenario_id)
            for _, campaign, record in self.iter_quarantined(system)
        }

    def clear_quarantine(self, system: str | None = None) -> int:
        """Drop quarantine entries (all, or one system's) so a resume retries them.

        Returns the number of entries removed.  The manifest is compacted
        in place via an atomic replace; an empty result removes the file.
        """
        if self._quarantine_handle is not None:
            self._quarantine_handle.close()
            self._quarantine_handle = None
        path = self.quarantine_path
        if not path.is_file():
            return 0
        # compacting the manifest is a write: the resuming run that calls
        # this is about to append anyway, so take (and keep) the writer lock
        self._acquire_writer_lock()
        kept: list[str] = []
        dropped = 0
        for entry_system, campaign, record in self.iter_quarantined():
            if system is not None and entry_system != system:
                kept.append(
                    json.dumps(
                        {"system": entry_system, "campaign": campaign, "record": record.to_dict()}
                    )
                )
            else:
                dropped += 1
        if kept:
            tmp = path.with_name(path.name + ".tmp")
            tmp.write_text("\n".join(kept) + "\n", encoding="utf-8")
            os.replace(tmp, path)
        else:
            path.unlink()
        return dropped

    # ------------------------------------------------------------- systems index
    def _load_systems_index(self) -> dict[str, str]:
        """The ``systems.json`` key -> file-name index (cached; {} when absent).

        A corrupt index (crash mid-rewrite) degrades to {} rather than
        raising: the index is recovery metadata, and the next append rewrites
        it whole.
        """
        if self._systems_index is None:
            try:
                raw = json.loads((self.root / _SYSTEMS_INDEX_NAME).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                raw = {}
            self._systems_index = {
                key: value
                for key, value in (raw.items() if isinstance(raw, dict) else ())
                if isinstance(key, str) and isinstance(value, str)
            }
        return self._systems_index

    def _register_system(self, system: str) -> None:
        """Record ``system``'s key -> file-name mapping before its first append.

        ``filename_for`` sanitisation is lossy (``mysql/full`` and
        ``mysql_full`` share a file name), so the original key must be
        stored where :meth:`systems` can recover it even without a manifest.
        """
        index = self._load_systems_index()
        filename = filename_for(system)
        if index.get(system) == filename:
            return
        index[system] = filename
        path = self.root / _SYSTEMS_INDEX_NAME
        path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------ loading
    def systems(self) -> list[str]:
        """System keys, in manifest order (falling back to the on-disk index).

        Without a manifest the keys come from ``systems.json`` -- the inverse
        of :func:`filename_for`'s lossy sanitisation -- plus, sorted after
        them, the bare stems of any ``*.jsonl`` files the index does not
        cover (stores written before the index existed).
        """
        if self.exists():
            manifest = self.read_manifest()
            recorded = manifest.get("systems")
            if isinstance(recorded, Mapping):
                return list(recorded)
        index = self._load_systems_index()
        indexed_files = set(index.values())
        legacy = sorted(
            path.stem
            for path in self.root.glob("*.jsonl")
            if path.name not in indexed_files and path.name != QUARANTINE_NAME
        )
        return sorted(index) + legacy

    def system_display_name(self, system: str) -> str:
        """Human-readable name for a system key (from the manifest)."""
        if self.exists():
            recorded = self.read_manifest().get("systems")
            if isinstance(recorded, Mapping):
                name = recorded.get(system)
                if isinstance(name, str):
                    return name
        return system

    def load_profiles(self) -> dict[str, dict[str, ResilienceProfile]]:
        """Rebuild per-system, per-campaign profiles from disk.

        Returns ``{system_key: {campaign: profile}}``; record order within a
        campaign is append order, which for a completed run is scenario order.
        """
        result: dict[str, dict[str, ResilienceProfile]] = {}
        for system in self.systems():
            display = self.system_display_name(system)
            per_campaign: dict[str, ResilienceProfile] = {}
            for campaign, record in self.iter_records(system):
                per_campaign.setdefault(campaign, ResilienceProfile(display)).add(record)
            result[system] = per_campaign
        return result

    def merged_profiles(self) -> dict[str, ResilienceProfile]:
        """One merged profile per system (all campaigns), keyed by display name.

        Two system keys sharing a display name merge into one profile rather
        than one silently shadowing the other.
        """
        merged: dict[str, ResilienceProfile] = {}
        for system, per_campaign in self.load_profiles().items():
            display = self.system_display_name(system)
            profile = merged.setdefault(display, ResilienceProfile(display))
            for campaign_profile in per_campaign.values():
                profile.extend(campaign_profile.records)
        return merged

    # ------------------------------------------------------------ verify/repair
    def _record_files(self) -> list[tuple[str, Path]]:
        """Every JSONL file worth checking: per-system files + quarantine."""
        files: list[tuple[str, Path]] = []
        seen: set[str] = set()
        for system in self.systems():
            path = self.path_for(system)
            if path.is_file() and path.name not in seen:
                seen.add(path.name)
                files.append((system, path))
        for path in sorted(self.root.glob("*.jsonl")):
            if path.name not in seen and path.name != QUARANTINE_NAME:
                seen.add(path.name)
                files.append((path.stem, path))
        if self.quarantine_path.is_file():
            files.append(("<quarantine>", self.quarantine_path))
        return files

    @staticmethod
    def _classify_lines(path: Path, quarantine: bool) -> tuple[int, list[int], bool]:
        """Scan one JSONL file: ``(records, corrupt interior lines, torn tail)``.

        Mirrors :meth:`iter_records`'s verdict rule: an unreadable line is a
        *torn tail* only when nothing follows it; any unreadable line with a
        successor is corrupt interior.
        """
        records = 0
        corrupt: list[int] = []
        pending: int | None = None
        with open(path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                if pending is not None:
                    corrupt.append(pending)
                    pending = None
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    InjectionRecord.from_dict(entry["record"])
                    if quarantine:
                        str(entry["system"])
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    pending = number
                    continue
                records += 1
        return records, corrupt, pending is not None

    def verify(self) -> StoreReport:
        """Scan the whole store without modifying it.

        Classifies, per file, readable records, corrupt interior lines and a
        torn trailing line (the one write a crash can tear), and checks the
        manifest and ``systems.json`` index are loadable.  A clean report
        means every ``--from-store`` reader will load the store without
        error.
        """
        report = StoreReport(root=str(self.root))
        try:
            if self.exists():
                self.read_manifest()
            else:
                report.problems.append(f"no manifest ({_MANIFEST_NAME} missing)")
        except StoreError as exc:
            report.problems.append(str(exc))
        index = self._load_systems_index()
        for system, filename in sorted(index.items()):
            if not (self.root / filename).is_file() and not self._handles.get(system):
                report.problems.append(
                    f"systems.json lists {system!r} -> {filename} but the file is missing"
                )
        for system, path in self._record_files():
            records, corrupt, torn = self._classify_lines(
                path, quarantine=path.name == QUARANTINE_NAME
            )
            report.files.append(
                FileCheck(
                    system=system,
                    path=path.name,
                    records=records,
                    corrupt_lines=corrupt,
                    torn_tail=torn,
                )
            )
        return report

    def repair(self) -> StoreReport:
        """Quarantine unreadable lines so every reader loads what is left.

        Corrupt interior lines and torn tails are moved -- verbatim -- to a
        ``<file>.jsonl.corrupt`` sidecar next to the file (never silently
        deleted: an operator can inspect what was lost), the record file is
        rewritten atomically with only its readable lines, and the
        ``systems.json`` index is rebuilt from the manifest and the files
        that actually exist.  Returns the report of what was moved; a second
        :meth:`verify` afterwards reports clean.
        """
        self.close()
        # repair rewrites record files in place: it is a writer, and must
        # fail fast rather than pull files out from under a live appender
        self._acquire_writer_lock()
        try:
            return self._repair_locked()
        finally:
            self._release_writer_lock()

    def _repair_locked(self) -> StoreReport:
        report = StoreReport(root=str(self.root), repaired=True)
        for system, path in self._record_files():
            records, corrupt, torn = self._classify_lines(
                path, quarantine=path.name == QUARANTINE_NAME
            )
            check = FileCheck(
                system=system,
                path=path.name,
                records=records,
                corrupt_lines=corrupt,
                torn_tail=torn,
            )
            report.files.append(check)
            if check.clean:
                continue
            bad_numbers = set(corrupt)
            sidecar = path.with_name(path.name + _CORRUPT_SUFFIX)
            tmp = path.with_name(path.name + ".tmp")
            with open(path, "r", encoding="utf-8") as source, open(
                tmp, "w", encoding="utf-8"
            ) as good, open(sidecar, "a", encoding="utf-8") as bad:
                lines = source.readlines()
                last_content = max(
                    (i for i, raw in enumerate(lines, start=1) if raw.strip()), default=0
                )
                for number, raw in enumerate(lines, start=1):
                    is_torn = torn and number == last_content
                    if number in bad_numbers or is_torn:
                        bad.write(raw if raw.endswith("\n") else raw + "\n")
                    else:
                        good.write(raw)
            os.replace(tmp, path)
        self._rebuild_systems_index()
        return report

    def _rebuild_systems_index(self) -> None:
        """Regenerate ``systems.json`` from the manifest and the files on disk."""
        index: dict[str, str] = {}
        manifest_systems: list[str] = []
        if self.exists():
            try:
                recorded = self.read_manifest().get("systems")
                if isinstance(recorded, Mapping):
                    manifest_systems = list(recorded)
            except StoreError:
                pass
        stale = self._load_systems_index()
        for system in (*manifest_systems, *sorted(stale)):
            filename = filename_for(system)
            if (self.root / filename).is_file():
                index.setdefault(system, filename)
        covered = set(index.values())
        for path in sorted(self.root.glob("*.jsonl")):
            if path.name not in covered and path.name != QUARANTINE_NAME:
                index.setdefault(path.stem, path.name)
        self._systems_index = index
        (self.root / _SYSTEMS_INDEX_NAME).write_text(
            json.dumps(index, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"


def diff_stores(
    left: "ResultStore",
    right: "ResultStore",
    *,
    ignore_quarantined: bool = True,
    ignore_fields: tuple[str, ...] = ("duration_seconds",),
) -> list[str]:
    """Content differences between two stores' record streams.

    The acceptance check behind chaos runs: every record a faulted run
    *did* produce must match the fault-free run's, field for field except
    wall-clock durations.  With ``ignore_quarantined`` (the default),
    scenarios quarantined in either store are exempt -- those are exactly
    the ones the fault layer gave up on.  Returns human-readable
    difference strings; an empty list means the stores agree.
    """
    diffs: list[str] = []
    systems = sorted(set(left.systems()) | set(right.systems()))
    for system in systems:
        exempt: set[tuple[str, str]] = set()
        if ignore_quarantined:
            exempt = left.quarantined_ids(system) | right.quarantined_ids(system)

        def load(store: "ResultStore") -> dict[tuple[str, str], dict]:
            loaded: dict[tuple[str, str], dict] = {}
            for campaign, record in store.iter_records(system):
                key = (campaign, record.scenario_id)
                if key in exempt:
                    continue
                entry = record.to_dict()
                for fieldname in ignore_fields:
                    entry.pop(fieldname, None)
                loaded[key] = entry
            return loaded

        left_records, right_records = load(left), load(right)
        for key in sorted(set(left_records) | set(right_records)):
            campaign, scenario_id = key
            where = f"{system}/{campaign}/{scenario_id}"
            if key not in left_records:
                diffs.append(f"{where}: only in {right.root}")
            elif key not in right_records:
                diffs.append(f"{where}: only in {left.root}")
            elif left_records[key] != right_records[key]:
                changed = sorted(
                    name
                    for name in set(left_records[key]) | set(right_records[key])
                    if left_records[key].get(name) != right_records[key].get(name)
                )
                diffs.append(f"{where}: fields differ: {', '.join(changed)}")
    return diffs
