"""Persistent result store: durable, resumable campaign records.

A :class:`ResultStore` is a directory holding

* ``manifest.json`` -- one JSON document describing the run that produced
  the records: seed, systems, plugin configurations, keyboard layout and
  executor settings.  The manifest is what makes a store *resumable*: a
  later invocation can verify it is about to continue the same experiment
  (same seed and plugin configuration) before skipping work.
* ``<system>.jsonl`` -- one append-only JSON-Lines file per system.  Each
  line is ``{"campaign": <name>, "record": <InjectionRecord.to_dict()>}``;
  records are appended (and flushed) as they land.
* ``systems.json`` -- the system-key -> file-name index, written before the
  first record of each system.  ``filename_for`` sanitisation is lossy
  (``mysql/full`` becomes ``mysql_full.jsonl``), so without the index a
  store whose manifest is missing could not map its files back to keys.

Durability guarantee, precisely: the engine releases records to the store
in scenario order as the in-order front of the sequence completes, under
*every* executor strategy.  A killed run therefore leaves the contiguous
prefix of already-released records on disk and loses only the in-flight
tail -- the experiments still running plus any that finished out of order
ahead of a still-running earlier scenario (on the order of ``jobs x
block_size`` records, exactly one for a serial run).  Resuming replays
only the scenarios whose records are missing.

The append-only layout is deliberate: injection campaigns are long, every
record is immutable once classified, and a crashed or killed run must leave
a readable prefix behind.  Trailing partial lines (the one write a crash can
tear) are ignored on load.  One append-mode handle is cached per system (a
record write is a single buffered write + flush, not an open/close); call
:meth:`close` -- or use the store as a context manager -- to release the
handles deterministically.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.core.profile import InjectionRecord, ResilienceProfile
from repro.errors import StoreError

__all__ = ["ResultStore", "MANIFEST_VERSION", "filename_for"]

#: Bump when the on-disk layout changes incompatibly.
MANIFEST_VERSION = 1

_MANIFEST_NAME = "manifest.json"
_SYSTEMS_INDEX_NAME = "systems.json"
_UNSAFE = re.compile(r"[^A-Za-z0-9._-]")


def filename_for(system: str) -> str:
    """Map a system key to a safe JSONL file name.

    Public because spec validation must refuse two system labels whose
    sanitized filenames collide (their records would interleave in one file).
    """
    safe = _UNSAFE.sub("_", system)
    return f"{safe}.jsonl"


class ResultStore:
    """Append-only, per-system JSONL storage for injection records."""

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self._manifest_cache: dict[str, Any] | None = None
        #: One cached append-mode handle per system; opening implies the
        #: file's torn tail (if any) has been repaired.
        self._handles: dict[str, Any] = {}
        #: Cached system-key -> file-name index (``systems.json``).
        self._systems_index: dict[str, str] | None = None

    def close(self) -> None:
        """Close every cached append handle (appending later reopens them)."""
        handles, self._handles = self._handles, {}
        for handle in handles.values():
            try:
                handle.close()
            except OSError:  # pragma: no cover - close() on flushed appends
                pass

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- manifest
    @property
    def manifest_path(self) -> Path:
        return self.root / _MANIFEST_NAME

    def exists(self) -> bool:
        """Whether this store has been initialised (has a manifest)."""
        return self.manifest_path.is_file()

    def ensure_fresh(self) -> "ResultStore":
        """Refuse to write a new run over an existing store; returns self."""
        if self.exists():
            raise StoreError(
                f"result store {self.root} already exists; choose a fresh "
                "directory (resume it, or re-render it with its from-store reader)"
            )
        return self

    def write_manifest(self, manifest: Mapping[str, Any]) -> None:
        """Initialise the store directory and persist the run manifest."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload = {"version": MANIFEST_VERSION, **manifest}
        self.manifest_path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        self._manifest_cache = payload

    def read_manifest(self) -> dict[str, Any]:
        """Load the manifest; raises :class:`StoreError` when absent or corrupt.

        The parsed manifest is cached on the instance: the manifest is
        written once per run, while loading a store reads it many times.
        """
        if self._manifest_cache is not None:
            return self._manifest_cache
        try:
            text = self.manifest_path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise StoreError(f"no result store at {self.root} (missing {_MANIFEST_NAME})") from None
        try:
            manifest = json.loads(text)
        except json.JSONDecodeError as exc:
            raise StoreError(f"corrupt manifest in {self.root}: {exc}") from exc
        version = manifest.get("version")
        if version != MANIFEST_VERSION:
            raise StoreError(
                f"result store {self.root} has manifest version {version!r}; "
                f"this build reads version {MANIFEST_VERSION}"
            )
        self._manifest_cache = manifest
        return manifest

    def require_kind(self, *kinds: str) -> dict[str, Any]:
        """Check the store was produced by one of the given run kinds.

        Guards the ``--from-store`` readers: rendering Table 1 from, say, a
        table3 store would produce a plausible-looking but wrong artefact.
        Returns the manifest on success.
        """
        manifest = self.read_manifest()
        kind = manifest.get("kind")
        if kind not in kinds:
            raise StoreError(
                f"result store {self.root} holds a {kind!r} run; "
                f"this reader needs one of: {', '.join(kinds)}"
            )
        return manifest

    def check_compatible(self, manifest: Mapping[str, Any]) -> None:
        """Verify a resume continues the experiment described by ``manifest``.

        When both the stored and the offered manifest embed a serialized
        :class:`~repro.core.spec.ExperimentSpec`, compatibility is a
        structured spec diff that reports the exact offending paths (worker
        settings and the store location are ignored -- profiles are
        executor-invariant).  Otherwise the legacy field-by-field comparison
        applies: any difference in seed, systems or plugin configuration
        means the stored scenario ids cannot be trusted to match, so the
        resume is refused with a pointed message.
        """
        stored = self.read_manifest()
        # the run kind guards the spec path too: a table1 store and a suite
        # spec may serialize identically but derive per-campaign seeds
        # differently, so resuming across kinds would double-populate records
        if stored.get("kind") != manifest.get("kind"):
            raise StoreError(
                f"store {self.root} was produced by a different run: "
                f"kind is {stored.get('kind')!r} on disk "
                f"but {manifest.get('kind')!r} now"
            )
        stored_spec, offered_spec = stored.get("spec"), manifest.get("spec")
        if isinstance(stored_spec, Mapping) and isinstance(offered_spec, Mapping):
            from repro.core.spec import diff_spec_dicts

            diffs = diff_spec_dicts(stored_spec, offered_spec)
            if diffs:
                raise StoreError(
                    f"store {self.root} was produced by a different experiment: "
                    + "; ".join(diffs[:5])
                    + ("; ..." if len(diffs) > 5 else "")
                )
            return
        # "kind" is already handled by the early guard above
        for field in ("seed", "systems", "plugins", "layout"):
            if stored.get(field) != manifest.get(field):
                raise StoreError(
                    f"store {self.root} was produced by a different run: "
                    f"{field} is {stored.get(field)!r} on disk "
                    f"but {manifest.get(field)!r} now"
                )

    # ------------------------------------------------------------------ records
    def path_for(self, system: str) -> Path:
        return self.root / filename_for(system)

    def append(self, system: str, campaign: str, record: InjectionRecord) -> None:
        """Append one record; flushed immediately so interrupts lose at most one.

        The append-mode handle is opened once per system and cached (a
        campaign appends thousands of records; open/close per record costs
        more than the write).  First open also repairs a torn tail and
        registers the system key in ``systems.json``.
        """
        handle = self._handles.get(system)
        if handle is None:
            self.root.mkdir(parents=True, exist_ok=True)
            path = self.path_for(system)
            # A prior crash may have torn the final line mid-write; appending
            # straight after it would weld this record onto the garbage and
            # turn it into an unreadable *interior* line.  Drop the torn tail
            # instead: its record was never counted as completed (iter_records
            # skips it), so the scenario simply runs again and re-appends.
            self._truncate_torn_tail(path)
            self._register_system(system)
            handle = open(path, "ab")
            self._handles[system] = handle
        line = json.dumps({"campaign": campaign, "record": record.to_dict()})
        handle.write(line.encode("utf-8") + b"\n")
        handle.flush()

    @staticmethod
    def _truncate_torn_tail(path: Path) -> None:
        """Truncate ``path`` back to the end of its last complete line."""
        try:
            handle = open(path, "rb+")
        except FileNotFoundError:
            return
        with handle:
            size = handle.seek(0, 2)
            if size == 0:
                return
            handle.seek(size - 1)
            if handle.read(1) == b"\n":
                return
            position, last_newline, chunk = size, -1, 4096
            while position > 0 and last_newline < 0:
                start = max(0, position - chunk)
                handle.seek(start)
                data = handle.read(position - start)
                index = data.rfind(b"\n")
                if index >= 0:
                    last_newline = start + index
                position = start
            handle.truncate(last_newline + 1 if last_newline >= 0 else 0)

    def iter_records(self, system: str) -> Iterator[tuple[str, InjectionRecord]]:
        """Yield ``(campaign, record)`` pairs for one system, in append order.

        The file is streamed line by line (a long campaign's JSONL can dwarf
        memory; loading a store must not slurp it whole).  A torn trailing
        line (crash mid-write) is skipped silently; a corrupt line elsewhere
        raises :class:`StoreError` since silently dropping interior records
        would fake completed work on resume -- whether a corrupt line is the
        tail is only known once the next line (any line, even a blank one)
        proves it interior, so the error is raised one line late.
        """
        path = self.path_for(system)
        if not path.is_file():
            return
        pending: tuple[int, Exception] | None = None  # corrupt line awaiting a tail verdict
        with open(path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                if pending is not None:
                    corrupt_number, exc = pending
                    raise StoreError(
                        f"corrupt record at {path}:{corrupt_number}: {exc}"
                    ) from exc
                line = raw.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                    record = InjectionRecord.from_dict(entry["record"])
                except (json.JSONDecodeError, KeyError, ValueError) as exc:
                    pending = (number, exc)  # torn final write, unless more follows
                    continue
                yield str(entry.get("campaign", "")), record

    def completed_ids(self, system: str) -> set[tuple[str, str]]:
        """``(campaign, scenario_id)`` pairs already on disk for one system."""
        return {(campaign, record.scenario_id) for campaign, record in self.iter_records(system)}

    # ------------------------------------------------------------- systems index
    def _load_systems_index(self) -> dict[str, str]:
        """The ``systems.json`` key -> file-name index (cached; {} when absent).

        A corrupt index (crash mid-rewrite) degrades to {} rather than
        raising: the index is recovery metadata, and the next append rewrites
        it whole.
        """
        if self._systems_index is None:
            try:
                raw = json.loads((self.root / _SYSTEMS_INDEX_NAME).read_text(encoding="utf-8"))
            except (OSError, json.JSONDecodeError):
                raw = {}
            self._systems_index = {
                key: value
                for key, value in (raw.items() if isinstance(raw, dict) else ())
                if isinstance(key, str) and isinstance(value, str)
            }
        return self._systems_index

    def _register_system(self, system: str) -> None:
        """Record ``system``'s key -> file-name mapping before its first append.

        ``filename_for`` sanitisation is lossy (``mysql/full`` and
        ``mysql_full`` share a file name), so the original key must be
        stored where :meth:`systems` can recover it even without a manifest.
        """
        index = self._load_systems_index()
        filename = filename_for(system)
        if index.get(system) == filename:
            return
        index[system] = filename
        path = self.root / _SYSTEMS_INDEX_NAME
        path.write_text(json.dumps(index, indent=2, sort_keys=True) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------ loading
    def systems(self) -> list[str]:
        """System keys, in manifest order (falling back to the on-disk index).

        Without a manifest the keys come from ``systems.json`` -- the inverse
        of :func:`filename_for`'s lossy sanitisation -- plus, sorted after
        them, the bare stems of any ``*.jsonl`` files the index does not
        cover (stores written before the index existed).
        """
        if self.exists():
            manifest = self.read_manifest()
            recorded = manifest.get("systems")
            if isinstance(recorded, Mapping):
                return list(recorded)
        index = self._load_systems_index()
        indexed_files = set(index.values())
        legacy = sorted(
            path.stem
            for path in self.root.glob("*.jsonl")
            if path.name not in indexed_files
        )
        return sorted(index) + legacy

    def system_display_name(self, system: str) -> str:
        """Human-readable name for a system key (from the manifest)."""
        if self.exists():
            recorded = self.read_manifest().get("systems")
            if isinstance(recorded, Mapping):
                name = recorded.get(system)
                if isinstance(name, str):
                    return name
        return system

    def load_profiles(self) -> dict[str, dict[str, ResilienceProfile]]:
        """Rebuild per-system, per-campaign profiles from disk.

        Returns ``{system_key: {campaign: profile}}``; record order within a
        campaign is append order, which for a completed run is scenario order.
        """
        result: dict[str, dict[str, ResilienceProfile]] = {}
        for system in self.systems():
            display = self.system_display_name(system)
            per_campaign: dict[str, ResilienceProfile] = {}
            for campaign, record in self.iter_records(system):
                per_campaign.setdefault(campaign, ResilienceProfile(display)).add(record)
            result[system] = per_campaign
        return result

    def merged_profiles(self) -> dict[str, ResilienceProfile]:
        """One merged profile per system (all campaigns), keyed by display name.

        Two system keys sharing a display name merge into one profile rather
        than one silently shadowing the other.
        """
        merged: dict[str, ResilienceProfile] = {}
        for system, per_campaign in self.load_profiles().items():
            display = self.system_display_name(system)
            profile = merged.setdefault(display, ResilienceProfile(display))
            for campaign_profile in per_campaign.values():
                profile.extend(campaign_profile.records)
        return merged

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.root)!r})"
