"""Physical keyboard geometry model.

A :class:`KeyboardLayout` is a set of :class:`Key` objects placed on a 2-D
grid (row, column) with per-row horizontal stagger, plus a mapping from
(key, modifier set) to the character produced.  The spelling-mistake plugin
uses the geometry to find keys *adjacent* to the key an operator intended to
press, modelling slips of the finger.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, Iterator

#: Modifier names understood by the layouts.
SHIFT = "shift"
ALTGR = "altgr"
NO_MODIFIERS: frozenset[str] = frozenset()
SHIFT_ONLY: frozenset[str] = frozenset({SHIFT})


@dataclass(frozen=True)
class Key:
    """One physical key.

    Attributes
    ----------
    key_id:
        Stable identifier, conventionally the unmodified character
        (``"a"``, ``"1"``, ``";"``) or a symbolic name (``"space"``).
    row, column:
        Grid position; column may be fractional to express row stagger.
    outputs:
        Mapping from a frozenset of modifier names to the produced character.
    """

    key_id: str
    row: int
    column: float
    outputs: dict[frozenset[str], str] = field(default_factory=dict, hash=False, compare=False)

    def character(self, modifiers: frozenset[str] = NO_MODIFIERS) -> str | None:
        """Character produced when pressing this key with ``modifiers``."""
        return self.outputs.get(frozenset(modifiers))

    def produces(self, character: str) -> frozenset[str] | None:
        """Modifier set needed to produce ``character``, or None."""
        for modifiers, output in self.outputs.items():
            if output == character:
                return modifiers
        return None

    def distance_to(self, other: "Key") -> float:
        """Euclidean distance on the key grid."""
        return math.hypot(self.row - other.row, self.column - other.column)


class KeyboardLayout:
    """A named collection of keys with geometry and character mappings."""

    def __init__(self, name: str, keys: Iterable[Key]):
        self.name = name
        self._keys: dict[str, Key] = {}
        self._char_index: dict[str, tuple[Key, frozenset[str]]] = {}
        for key in keys:
            self.add_key(key)

    def add_key(self, key: Key) -> Key:
        """Register ``key`` and index every character it can produce."""
        self._keys[key.key_id] = key
        for modifiers, character in key.outputs.items():
            # first registration wins so base characters stay canonical
            self._char_index.setdefault(character, (key, modifiers))
        return key

    # ------------------------------------------------------------------ access
    def keys(self) -> Iterator[Key]:
        """Iterate over all keys."""
        return iter(self._keys.values())

    def key(self, key_id: str) -> Key:
        """Return the key with identifier ``key_id`` (KeyError if missing)."""
        return self._keys[key_id]

    def __contains__(self, key_id: str) -> bool:
        return key_id in self._keys

    def __len__(self) -> int:
        return len(self._keys)

    def supported_characters(self) -> set[str]:
        """All characters this layout can type."""
        return set(self._char_index)

    # --------------------------------------------------------------- geometry
    def locate(self, character: str) -> tuple[Key, frozenset[str]] | None:
        """Return (key, modifiers) producing ``character``, or None."""
        return self._char_index.get(character)

    def neighbours(self, key: Key, max_distance: float = 1.5) -> list[Key]:
        """Keys whose centre lies within ``max_distance`` of ``key`` (excluding it).

        The default radius of 1.5 grid units captures the horizontally and
        vertically adjacent keys as well as the diagonally staggered ones,
        which is the "nearby keys" notion used by the paper.
        """
        result = [
            other
            for other in self._keys.values()
            if other.key_id != key.key_id and key.distance_to(other) <= max_distance
        ]
        result.sort(key=lambda other: (key.distance_to(other), other.key_id))
        return result

    def neighbour_characters(
        self,
        character: str,
        max_distance: float = 1.5,
        keep_modifiers: bool = True,
    ) -> list[str]:
        """Characters an operator might type instead of ``character``.

        Locates the key and modifiers producing ``character`` and returns the
        characters produced by neighbouring keys.  When ``keep_modifiers`` is
        true (the paper's model) the same modifier combination is applied to
        the neighbouring keys; neighbours that produce nothing under those
        modifiers are skipped.
        """
        located = self.locate(character)
        if located is None:
            return []
        key, modifiers = located
        wanted = modifiers if keep_modifiers else NO_MODIFIERS
        outputs = []
        for neighbour in self.neighbours(key, max_distance):
            produced = neighbour.character(wanted)
            if produced is not None and produced != character:
                outputs.append(produced)
        return outputs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"KeyboardLayout({self.name!r}, keys={len(self._keys)})"


def build_rows(
    name: str,
    rows: list[tuple[int, float, str, str | None]],
    extra_keys: Iterable[Key] = (),
) -> KeyboardLayout:
    """Build a layout from row specifications.

    Each row entry is ``(row_index, column_offset, unshifted, shifted)`` where
    ``unshifted`` and ``shifted`` are equal-length strings giving the
    characters produced by consecutive keys without and with Shift.  The
    ``shifted`` string may be ``None`` for rows without shifted output.
    """
    keys: list[Key] = []
    for row_index, offset, unshifted, shifted in rows:
        if shifted is not None and len(shifted) != len(unshifted):
            raise ValueError(f"row {row_index}: shifted and unshifted lengths differ")
        for position, base_char in enumerate(unshifted):
            outputs = {NO_MODIFIERS: base_char}
            if shifted is not None:
                outputs[SHIFT_ONLY] = shifted[position]
            keys.append(
                Key(
                    key_id=base_char,
                    row=row_index,
                    column=offset + position,
                    outputs=outputs,
                )
            )
    layout = KeyboardLayout(name, keys)
    for key in extra_keys:
        layout.add_key(key)
    return layout
