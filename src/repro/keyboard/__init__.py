"""Keyboard models used by the spelling-mistake plugin.

The paper (Section 4.1) generates realistic substitutions and insertions by
encoding a true keyboard: find the key (and modifiers) that produces the
character at the injection point, then enumerate the characters produced by
pressing *nearby* keys with the same modifiers.

This package provides the key-geometry model (:mod:`repro.keyboard.layout`),
concrete layouts (QWERTY-US, AZERTY, Dvorak; :mod:`repro.keyboard.layouts`)
and the neighbour/modifier logic (:mod:`repro.keyboard.typist`).
"""

from repro.keyboard.layout import Key, KeyboardLayout
from repro.keyboard.layouts import available_layouts, get_layout, qwerty_us, azerty_fr, dvorak
from repro.keyboard.typist import Typist

__all__ = [
    "Key",
    "KeyboardLayout",
    "Typist",
    "available_layouts",
    "get_layout",
    "qwerty_us",
    "azerty_fr",
    "dvorak",
]
