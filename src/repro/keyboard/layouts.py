"""Concrete keyboard layouts.

Three layouts are provided:

* ``qwerty_us`` -- the US QWERTY layout (default, matches the paper's setup),
* ``azerty_fr`` -- French AZERTY,
* ``dvorak``    -- simplified Dvorak.

Layouts are built lazily and cached, and can be looked up by name with
:func:`get_layout`.
"""

from __future__ import annotations

from functools import lru_cache

from repro.keyboard.layout import Key, KeyboardLayout, NO_MODIFIERS, SHIFT_ONLY, build_rows

__all__ = ["qwerty_us", "azerty_fr", "dvorak", "get_layout", "available_layouts"]


def _space_key(row: int = 4, column: float = 4.0) -> Key:
    return Key("space", row, column, outputs={NO_MODIFIERS: " ", SHIFT_ONLY: " "})


@lru_cache(maxsize=None)
def qwerty_us() -> KeyboardLayout:
    """US QWERTY layout with digits, letters and common punctuation."""
    rows = [
        (0, 0.0, "`1234567890-=", "~!@#$%^&*()_+"),
        (1, 0.5, "qwertyuiop[]\\", "QWERTYUIOP{}|"),
        (2, 0.75, "asdfghjkl;'", 'ASDFGHJKL:"'),
        (3, 1.25, "zxcvbnm,./", "ZXCVBNM<>?"),
    ]
    return build_rows("qwerty-us", rows, extra_keys=[_space_key()])


@lru_cache(maxsize=None)
def azerty_fr() -> KeyboardLayout:
    """French AZERTY layout (simplified: no dead keys, AltGr omitted)."""
    rows = [
        (0, 0.0, "²&é\"'(-è_çà)=", "²1234567890°+"),
        (1, 0.5, "azertyuiop^$", "AZERTYUIOP¨£"),
        (2, 0.75, "qsdfghjklmù", "QSDFGHJKLM%"),
        (3, 1.25, "wxcvbn,;:!", "WXCVBN?./§"),
    ]
    return build_rows("azerty-fr", rows, extra_keys=[_space_key()])


@lru_cache(maxsize=None)
def dvorak() -> KeyboardLayout:
    """Simplified US Dvorak layout."""
    rows = [
        (0, 0.0, "`1234567890[]", "~!@#$%^&*(){}"),
        (1, 0.5, "',.pyfgcrl/=\\", '"<>PYFGCRL?+|'),
        (2, 0.75, "aoeuidhtns-", "AOEUIDHTNS_"),
        (3, 1.25, ";qjkxbmwvz", ":QJKXBMWVZ"),
    ]
    return build_rows("dvorak", rows, extra_keys=[_space_key()])


_LAYOUT_FACTORIES = {
    "qwerty-us": qwerty_us,
    "qwerty": qwerty_us,
    "azerty-fr": azerty_fr,
    "azerty": azerty_fr,
    "dvorak": dvorak,
}


def available_layouts() -> list[str]:
    """Canonical names of the bundled layouts."""
    return ["qwerty-us", "azerty-fr", "dvorak"]


def get_layout(name: str) -> KeyboardLayout:
    """Look a layout up by name (case-insensitive); raises KeyError if unknown."""
    factory = _LAYOUT_FACTORIES.get(name.lower())
    if factory is None:
        raise KeyError(f"unknown keyboard layout {name!r}; available: {available_layouts()}")
    return factory()
