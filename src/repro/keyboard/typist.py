"""Typing-slip model built on top of a keyboard layout.

The :class:`Typist` answers the questions the spelling plugin needs:

* which characters could an operator have hit instead of the intended one
  (substitution candidates, Section 4.1 of the paper),
* which spurious characters could slip in next to an intended keypress
  (insertion candidates),
* how does a miscoordinated Shift press alter the case of adjacent letters
  (case alterations, Section 2.1).
"""

from __future__ import annotations

from repro.keyboard.layout import KeyboardLayout, SHIFT
from repro.keyboard.layouts import qwerty_us


class Typist:
    """Models finger slips on a specific keyboard layout."""

    def __init__(self, layout: KeyboardLayout | None = None, reach: float = 1.5):
        #: Keyboard the operator is typing on.
        self.layout = layout or qwerty_us()
        #: Neighbour radius in grid units (1.5 covers adjacent + staggered keys).
        self.reach = reach

    # ----------------------------------------------------------- substitutions
    def substitution_candidates(self, character: str) -> list[str]:
        """Characters produced by pressing a key adjacent to the intended one.

        The same modifier combination as the intended character is kept, per
        the paper's model (an operator holding Shift who misses ``A`` will
        produce another *capital* letter).
        """
        return self.layout.neighbour_characters(character, max_distance=self.reach)

    # -------------------------------------------------------------- insertions
    def insertion_candidates(self, character: str) -> list[str]:
        """Spurious characters that may be typed alongside ``character``.

        An accidental double press of a nearby key inserts one of its
        characters; the intended character itself is also a realistic
        insertion (key bounce / double tap), so it is included first.
        """
        candidates = [character]
        for neighbour in self.layout.neighbour_characters(character, max_distance=self.reach):
            if neighbour not in candidates:
                candidates.append(neighbour)
        return candidates

    # ---------------------------------------------------------------- shifting
    def requires_shift(self, character: str) -> bool | None:
        """True/False when the layout can type ``character``, None otherwise."""
        located = self.layout.locate(character)
        if located is None:
            return None
        _key, modifiers = located
        return SHIFT in modifiers

    def toggle_shift(self, character: str) -> str | None:
        """Character produced by the same key with Shift toggled.

        For letters this is simply the opposite case; for other keys it is the
        other legend on the key (``1`` <-> ``!``).  Returns None when the
        layout cannot type ``character`` or the key has no alternate output.
        """
        located = self.layout.locate(character)
        if located is None:
            return None
        key, modifiers = located
        toggled = frozenset(modifiers ^ {SHIFT})
        alternate = key.character(toggled)
        if alternate is None or alternate == character:
            return None
        return alternate

    def can_type(self, character: str) -> bool:
        """True when the layout has a key producing ``character``."""
        return self.layout.locate(character) is not None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Typist(layout={self.layout.name!r}, reach={self.reach})"
