"""Exception hierarchy for the ConfErr reproduction.

Every error raised by the library derives from :class:`ConfErrError`, so
callers can catch a single base class.  More specific subclasses describe
the stage of the pipeline at which the failure occurred:

* parsing / serialising native configuration files,
* mapping between the system-specific tree and a plugin-specific view,
* generating fault scenarios from templates,
* driving the system under test (SUT).
"""

from __future__ import annotations


class ConfErrError(Exception):
    """Base class for all errors raised by the library."""


class ParseError(ConfErrError):
    """A native configuration file could not be parsed.

    Attributes
    ----------
    filename:
        Name of the file that failed to parse (may be ``"<string>"``).
    line:
        1-based line number of the offending input, when known.
    """

    def __init__(self, message: str, *, filename: str = "<string>", line: int | None = None):
        self.filename = filename
        self.line = line
        location = filename if line is None else f"{filename}:{line}"
        super().__init__(f"{location}: {message}")


class SerializationError(ConfErrError):
    """A configuration tree cannot be expressed in the native file format.

    The paper (Section 3.2 / 5.4) relies on this: some mutated abstract
    representations cannot be turned back into a valid configuration file
    (for example djbdns cannot express a PTR record detached from its A
    record), and ConfErr must detect and report this rather than inject a
    malformed file.
    """


class TransformError(ConfErrError):
    """A view transformation (system-specific tree <-> plugin view) failed."""


class PathSyntaxError(ConfErrError):
    """A node-selection path expression could not be parsed."""


class TemplateError(ConfErrError):
    """An error template was mis-parameterised or could not be applied."""


class PluginError(ConfErrError):
    """An error-generator plugin failed to produce fault scenarios."""


class SUTError(ConfErrError):
    """The system under test could not be driven (setup/start/stop failures
    unrelated to the injected configuration error)."""


class CampaignError(ConfErrError):
    """An injection campaign was misconfigured."""


class CancelledRun(ConfErrError):
    """A run was cancelled cooperatively while in flight.

    Raised from a suite's cancellation hook between records/cells; every
    record released before the cancellation is already durable in the
    result store, so a cancelled run can later be resumed like an
    interrupted one.  The campaign-as-a-service scheduler uses this to
    implement job cancellation and graceful service shutdown."""


class ServiceError(ConfErrError):
    """The campaign service (HTTP API / job queue) hit an operational error."""


class StoreError(ConfErrError):
    """A persistent result store is missing, corrupt, or incompatible with
    the suite being run (mismatched seed, systems or plugin configuration)."""


class SpecError(ConfErrError):
    """An experiment specification is structurally or semantically invalid.

    Messages are prefixed with the exact path of the offending entry
    (``plugins[1].params.layout: unknown layout 'qwertz-xx'``) so spec files
    can be corrected without guesswork."""
