"""ConfErr reproduction: assessing resilience to human configuration errors.

This package reimplements the ConfErr tool (Keller, Upadhyaya, Candea --
DSN 2008): it generates realistic configuration errors from human-error
models, injects them into a system's configuration files, measures the
system's reaction and produces a *resilience profile*.

Typical usage::

    from repro import Campaign, SpellingMistakesPlugin
    from repro.sut.mysql import SimulatedMySQL

    campaign = Campaign(SimulatedMySQL(), [SpellingMistakesPlugin()], seed=42)
    result = campaign.run()
    print(result.overall.summary())

The public surface is re-exported here; see the subpackages for details:

* :mod:`repro.core`     -- configuration trees, templates, views, engine, profiles
* :mod:`repro.parsers`  -- native configuration file formats
* :mod:`repro.keyboard` -- keyboard layouts used by the typo model
* :mod:`repro.plugins`  -- the error-generator plugins
* :mod:`repro.dns`      -- DNS record model and resolver substrate
* :mod:`repro.sut`      -- systems under test (simulated MySQL, Postgres, Apache, BIND, djbdns)
* :mod:`repro.bench`    -- the experiment runners that regenerate the paper's tables and figures
"""

from repro.core.campaign import Campaign, CampaignResult
from repro.core.engine import InjectionEngine
from repro.core.infoset import ConfigNode, ConfigSet, ConfigTree
from repro.core.profile import InjectionOutcome, InjectionRecord, ResilienceProfile
from repro.core.templates import FaultScenario
from repro.errors import ConfErrError
from repro.plugins import (
    ConstraintViolationPlugin,
    DnsSemanticErrorsPlugin,
    SpellingMistakesPlugin,
    StructuralErrorsPlugin,
    StructuralVariationsPlugin,
)

__version__ = "1.0.0"

__all__ = [
    "Campaign",
    "CampaignResult",
    "InjectionEngine",
    "ConfigNode",
    "ConfigSet",
    "ConfigTree",
    "InjectionOutcome",
    "InjectionRecord",
    "ResilienceProfile",
    "FaultScenario",
    "ConfErrError",
    "SpellingMistakesPlugin",
    "StructuralErrorsPlugin",
    "StructuralVariationsPlugin",
    "DnsSemanticErrorsPlugin",
    "ConstraintViolationPlugin",
    "__version__",
]
