"""Campaign-as-a-service: an HTTP API + multi-tenant job queue.

Everything before this package runs a campaign inside one CLI process.
The service decouples the two: a long-running ``conferr serve`` process
accepts :class:`~repro.core.spec.ExperimentSpec` documents over HTTP,
queues them as durable *jobs* (spec + state on disk), drains the queue
through the existing :class:`~repro.core.suite.CampaignSuite` machinery on
a background scheduler, and serves live progress and the rendered paper
artefacts to many concurrent clients -- all from each job's append-only
:class:`~repro.core.store.ResultStore`.

Layers
------
* :mod:`repro.service.jobs` -- the job model (``QUEUED/RUNNING/DONE/
  FAILED/CANCELLED``), per-tenant on-disk layout and the thread-safe
  :class:`JobRegistry` that persists it.
* :mod:`repro.service.scheduler` -- the background :class:`Scheduler`
  draining the queue into campaign suites, with per-tenant concurrency
  caps, live progress counters, cooperative cancellation and
  restart-resume via the store's resume protocol.
* :mod:`repro.service.app` -- :class:`CampaignService`, the registry +
  scheduler composition, plus the artifact renderers (the exact
  ``--from-store`` code paths the CLI uses, so served tables are
  byte-identical to local renders).
* :mod:`repro.service.http` -- the stdlib ``ThreadingHTTPServer`` JSON
  API (no new runtime dependencies).
* :mod:`repro.service.client` -- a tiny stdlib HTTP client used by tests,
  benchmarks and the CI smoke.

See ``docs/SERVICE.md`` for the API reference and lifecycle semantics.
"""

from repro.service.app import ARTIFACT_NAMES, CampaignService, render_artifact
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.http import make_server, serve
from repro.service.jobs import (
    DEFAULT_TENANT,
    JOB_STATES,
    TERMINAL_STATES,
    Job,
    JobRegistry,
    validate_tenant,
)
from repro.service.scheduler import Scheduler

__all__ = [
    "ARTIFACT_NAMES",
    "CampaignService",
    "render_artifact",
    "ServiceClient",
    "ServiceClientError",
    "make_server",
    "serve",
    "DEFAULT_TENANT",
    "JOB_STATES",
    "TERMINAL_STATES",
    "Job",
    "JobRegistry",
    "validate_tenant",
    "Scheduler",
]
