"""The campaign service proper: registry + scheduler + artifact renderers.

:class:`CampaignService` is what ``conferr serve`` (and the tests) start:
it loads the data directory into a :class:`~repro.service.jobs.JobRegistry`
(requeueing jobs interrupted by a crash), runs a
:class:`~repro.service.scheduler.Scheduler` over it, and exposes the
submit/poll/cancel/render operations the HTTP layer maps routes onto.

Artifact rendering goes through *exactly* the ``--from-store`` code paths
the CLI uses (``table1_from_store`` & co., :func:`render_store_report`),
so a table fetched over HTTP is byte-identical to the local
``conferr table1 --from-store <job-store>`` render -- the acceptance
criterion of the service, and the reason results need no new code to be
trusted.  Renders read the job's store concurrently with the appending
writer; the store's reader contract (complete records + at most a torn
tail) makes that safe mid-run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.core.spec import ExperimentSpec, validation_error_entry, validation_report
from repro.core.store import ResultStore
from repro.errors import ServiceError, SpecError
from repro.service.jobs import Job, JobRegistry
from repro.service.scheduler import Scheduler

__all__ = ["ARTIFACT_NAMES", "CampaignService", "render_artifact", "SpecRejected"]

#: Renderable artifacts of a job's result store, named after the CLI
#: sub-commands that produce the identical bytes locally.
ARTIFACT_NAMES = ("table1", "table2", "table3", "figure3", "matrix", "report")


def render_artifact(store: ResultStore, name: str) -> str:
    """Render one artifact from a result store, CLI-byte-identical.

    Raises :class:`~repro.errors.StoreError` when the store's run kind
    cannot serve the artifact (e.g. ``table2`` from a suite store) and
    :class:`ServiceError` for an unknown artifact name.
    """
    if name == "table1":
        from repro.bench import table1_from_store

        return table1_from_store(store).table_text + "\n"
    if name == "table2":
        from repro.bench import table2_from_store

        return table2_from_store(store).table_text + "\n"
    if name == "table3":
        from repro.bench import table3_from_store

        return table3_from_store(store).table_text + "\n"
    if name == "figure3":
        from repro.bench import figure3_from_store

        result = figure3_from_store(store)
        return f"{result.chart_text}\n\n{json.dumps(result.distributions, indent=2)}\n"
    if name == "matrix":
        from repro.bench import matrix_from_store

        return matrix_from_store(store).table_text + "\n"
    if name == "report":
        from repro.core.report import render_store_report

        return render_store_report(store) + "\n"
    raise ServiceError(
        f"unknown artifact {name!r}; available: {', '.join(ARTIFACT_NAMES)}"
    )


class SpecRejected(ServiceError):
    """A submitted spec failed validation; carries the machine-readable report.

    ``report`` is the exact ``{"valid": false, "errors": [...]}`` document
    ``conferr validate --json`` prints -- the HTTP layer returns it
    verbatim as the 400 response body.
    """

    def __init__(self, report: dict[str, Any]):
        self.report = report
        messages = "; ".join(
            error.get("message", "") for error in report.get("errors", ())
        )
        super().__init__(f"spec rejected: {messages}")


class CampaignService:
    """Registry + scheduler composition behind the HTTP API.

    Usable headless (tests drive it directly) or through
    :func:`repro.service.http.serve`.
    """

    def __init__(
        self,
        data_dir: str | Path,
        *,
        jobs_per_tenant: int = 1,
        workers: int = 2,
        poll_interval: float = 0.05,
    ):
        self.registry = JobRegistry(data_dir)
        self.scheduler = Scheduler(
            self.registry,
            jobs_per_tenant=jobs_per_tenant,
            workers=workers,
            poll_interval=poll_interval,
        )

    # ----------------------------------------------------------------- control
    def start(self) -> "CampaignService":
        self.scheduler.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: running jobs are interrupted and requeued."""
        self.scheduler.stop(timeout=timeout)

    def __enter__(self) -> "CampaignService":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    # -------------------------------------------------------------- operations
    def submit(self, tenant: str, spec: ExperimentSpec) -> Job:
        """Validate and enqueue a spec as a new job for ``tenant``.

        Rejections raise :class:`SpecRejected` with the same document the
        ``validate --json`` CLI emits.  Specs may not carry a ``store``
        section: the service owns store placement (one per job, inside the
        tenant's directory) -- anything else would let a job write outside
        its isolation boundary.
        """
        if spec.store is not None:
            raise SpecRejected(
                {
                    "valid": False,
                    "errors": [
                        {
                            "code": "spec/invalid-value",
                            "path": "store",
                            "message": (
                                "the service assigns each job's result store; "
                                "remove the [store] section from the spec"
                            ),
                            "severity": "error",
                        }
                    ],
                }
            )
        report = validation_report(spec)
        if not report["valid"]:
            raise SpecRejected(report)
        return self.registry.submit(tenant, spec)

    def submit_text(self, tenant: str, body: str, *, toml: bool = False) -> Job:
        """Submit a raw spec document (JSON by default, TOML when asked)."""
        try:
            spec = ExperimentSpec.from_toml(body) if toml else ExperimentSpec.from_json(body)
        except SpecError as exc:
            raise SpecRejected(
                {"valid": False, "errors": [validation_error_entry(str(exc))]}
            ) from None
        return self.submit(tenant, spec)

    def job(self, tenant: str, job_id: str) -> Job:
        job = self.registry.get(tenant, job_id)
        if job is None:
            raise ServiceError(f"no job {job_id} for tenant {tenant}")
        return job

    def cancel(self, tenant: str, job_id: str) -> Job:
        job = self.job(tenant, job_id)
        self.registry.request_cancel(job)
        return job

    def artifact(self, tenant: str, job_id: str, name: str) -> str:
        """Render one artifact from a job's store (live reads allowed).

        A job that has not produced a store yet (still QUEUED) has nothing
        to render; anything later -- including mid-RUNNING -- is served
        from whatever complete records are on disk right now.
        """
        job = self.job(tenant, job_id)
        store = ResultStore(job.store_dir)
        if not store.exists():
            raise ServiceError(
                f"job {job_id} has no results yet (state: {job.state})"
            )
        return render_artifact(store, name)

    def health(self) -> dict[str, Any]:
        return {
            "status": "ok",
            "jobs": self.registry.counts(),
            "running_threads": self.scheduler.running_count(),
            "stopping": self.scheduler.stopping,
        }
