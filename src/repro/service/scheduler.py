"""Background scheduler: drains the job queue into campaign suites.

One dispatcher thread claims runnable jobs (FIFO, per-tenant concurrency
caps) and hands each to a worker thread that drives the existing
:class:`~repro.core.suite.CampaignSuite` machinery:

* the job's spec is rebuilt with :meth:`ExperimentSpec.from_dict` (it was
  validated at submission),
* records stream into the job's :class:`~repro.core.store.ResultStore`
  (advisory writer lock, torn-tail-tolerant readers) with a per-record
  observer feeding the registry's live progress counters,
* the suite's ``cancel_check`` hook polls the job's cancel event and the
  scheduler's stop flag, so ``DELETE /jobs/{id}`` and graceful service
  shutdown both land as :class:`~repro.errors.CancelledRun` between
  records -- everything already released stays durable,
* a job whose store already exists (service restarted mid-run) is resumed
  through the store's resume protocol: completed scenario ids are skipped,
  so no scenario ever produces two records.
"""

from __future__ import annotations

import threading
from typing import Callable

from repro.core.spec import ExperimentSpec
from repro.core.store import ResultStore
from repro.core.suite import CampaignSuite
from repro.errors import CancelledRun
from repro.service.jobs import Job, JobRegistry

__all__ = ["Scheduler"]


class Scheduler:
    """Claims QUEUED jobs and runs them on daemon worker threads.

    Parameters
    ----------
    registry:
        The :class:`JobRegistry` to drain.
    jobs_per_tenant:
        Maximum jobs of one tenant RUNNING at once (the multi-tenant
        fairness cap).
    workers:
        Maximum jobs RUNNING at once across all tenants.
    poll_interval:
        Dispatcher sleep between queue scans, seconds.
    """

    def __init__(
        self,
        registry: JobRegistry,
        *,
        jobs_per_tenant: int = 1,
        workers: int = 2,
        poll_interval: float = 0.05,
    ):
        if jobs_per_tenant < 1:
            raise ValueError(f"jobs_per_tenant must be >= 1, got {jobs_per_tenant}")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.registry = registry
        self.jobs_per_tenant = jobs_per_tenant
        self.workers = workers
        self.poll_interval = poll_interval
        self._stop = threading.Event()
        self._dispatcher: threading.Thread | None = None
        self._threads: dict[tuple[str, str], threading.Thread] = {}
        self._threads_lock = threading.Lock()

    # ------------------------------------------------------------------ control
    def start(self) -> "Scheduler":
        if self._dispatcher is not None and self._dispatcher.is_alive():
            return self
        self._stop.clear()
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="conferr-scheduler", daemon=True
        )
        self._dispatcher.start()
        return self

    def stop(self, timeout: float = 30.0) -> None:
        """Gracefully stop: interrupt running jobs and requeue them.

        Running suites see the stop flag through their ``cancel_check``
        hook, abort between records (everything released is already on
        disk), and go back to QUEUED -- the next service start resumes
        them.  Idempotent.
        """
        self._stop.set()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=timeout)
            self._dispatcher = None
        with self._threads_lock:
            threads = list(self._threads.values())
        for thread in threads:
            thread.join(timeout=timeout)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def running_count(self) -> int:
        with self._threads_lock:
            return sum(1 for thread in self._threads.values() if thread.is_alive())

    # --------------------------------------------------------------- dispatcher
    def _dispatch_loop(self) -> None:
        while not self._stop.is_set():
            self._reap_finished()
            job = self.registry.claim_next(self.jobs_per_tenant, self.workers)
            if job is None:
                self._stop.wait(self.poll_interval)
                continue
            thread = threading.Thread(
                target=self._run_job,
                args=(job,),
                name=f"conferr-job-{job.id}",
                daemon=True,
            )
            with self._threads_lock:
                self._threads[(job.tenant, job.id)] = thread
            thread.start()

    def _reap_finished(self) -> None:
        with self._threads_lock:
            for key in [key for key, thread in self._threads.items() if not thread.is_alive()]:
                del self._threads[key]

    # ------------------------------------------------------------------- worker
    def _cancel_check_for(self, job: Job) -> Callable[[], bool]:
        return lambda: job.cancel_event.is_set() or self._stop.is_set()

    def _run_job(self, job: Job) -> None:
        store = ResultStore(job.store_dir)
        try:
            spec = ExperimentSpec.from_dict(job.spec)

            def observe(system: str, plugin: str, record) -> None:
                self.registry.record_progress(
                    job, system, plugin, bool(record.metadata.get("quarantined"))
                )

            suite = CampaignSuite.from_spec(
                spec,
                record_observer=observe,
                cancel_check=self._cancel_check_for(job),
            )
            # a pre-existing store means a previous service process already
            # started this job: resume it (exactly-once per scenario)
            result = suite.run(store=store, resume=store.exists())
        except CancelledRun:
            if job.cancel_event.is_set():
                self.registry.mark_cancelled(job)
            else:  # graceful shutdown: hand the job back to the queue
                self.registry.requeue(job)
        except Exception as exc:  # noqa: BLE001 - a job must never kill the service
            self.registry.fail(job, f"{type(exc).__name__}: {exc}")
        else:
            self.registry.finish_cells(job, result.executed, result.skipped)
            self.registry.finish(
                job,
                executed=result.total_executed(),
                skipped=result.total_skipped(),
            )
        finally:
            store.close()
