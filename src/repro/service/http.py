"""Stdlib HTTP front-end of the campaign service (no new dependencies).

A :class:`http.server.ThreadingHTTPServer` -- one thread per request, so
many clients can poll progress while jobs run -- mapping a small JSON API
onto :class:`~repro.service.app.CampaignService`:

====== ============================== ===========================================
Method Path                           Meaning
====== ============================== ===========================================
GET    ``/healthz``                   liveness + per-state job counts
POST   ``/jobs``                      submit a spec (JSON body; TOML with a
                                      ``Content-Type: application/toml`` header);
                                      400 carries the ``validate --json`` report
GET    ``/jobs``                      list the calling tenant's jobs
GET    ``/jobs/{id}``                 job state + live per-cell progress
DELETE ``/jobs/{id}``                 cancel (queued: immediate; running:
                                      cooperative between records)
GET    ``/jobs/{id}/{artifact}``      render ``table1|table2|table3|figure3|
                                      matrix|report`` from the job's store,
                                      byte-identical to the CLI ``--from-store``
====== ============================== ===========================================

Tenancy rides on the ``X-Tenant`` header (default ``default``); a tenant
can only ever see its own jobs.  Errors are JSON ``{"error": ...}`` except
spec rejections, which return the machine-readable validation report.
"""

from __future__ import annotations

import json
import re
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.errors import ServiceError, StoreError
from repro.service.app import ARTIFACT_NAMES, CampaignService, SpecRejected
from repro.service.jobs import DEFAULT_TENANT, validate_tenant

__all__ = ["make_server", "serve"]

_JOB_PATH = re.compile(r"^/jobs/([A-Za-z0-9._-]+)$")
_ARTIFACT_PATH = re.compile(
    r"^/jobs/([A-Za-z0-9._-]+)/(" + "|".join(ARTIFACT_NAMES) + r")$"
)
#: Submissions larger than this are refused outright (a spec is small; a
#: multi-megabyte body is a mistake or abuse, not an experiment).
_MAX_BODY_BYTES = 1 << 20


class _Handler(BaseHTTPRequestHandler):
    server_version = "conferr-service"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> CampaignService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # quiet by default: tests
            super().log_message(format, *args)  # pragma: no cover

    # ---------------------------------------------------------------- plumbing
    def _send_json(self, status: int, payload: Any) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _tenant(self) -> str:
        return validate_tenant(self.headers.get("X-Tenant", DEFAULT_TENANT))

    def _read_body(self) -> str:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise ServiceError(
                f"request body of {length} bytes exceeds the "
                f"{_MAX_BODY_BYTES}-byte spec limit"
            )
        return self.rfile.read(length).decode("utf-8") if length else ""

    def _dispatch(self, method: str) -> None:
        try:
            self._route(method)
        except SpecRejected as exc:
            self._send_json(400, exc.report)
        except ServiceError as exc:
            message = str(exc)
            status = 404 if message.startswith("no job ") else 400
            if "cannot be cancelled" in message:
                status = 409
            self._send_json(status, {"error": message})
        except StoreError as exc:
            # a store that cannot serve the artifact (wrong run kind, still
            # empty, damaged): the request was well-formed, the state says no
            self._send_json(409, {"error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - a handler must never kill the server
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})

    # ------------------------------------------------------------------ routes
    def _route(self, method: str) -> None:
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            self._send_json(200, self.service.health())
            return
        if path == "/jobs":
            tenant = self._tenant()
            if method == "POST":
                content_type = (self.headers.get("Content-Type") or "").lower()
                toml = "toml" in content_type
                job = self.service.submit_text(tenant, self._read_body(), toml=toml)
                self._send_json(201, job.to_dict())
            elif method == "GET":
                jobs = [job.to_dict() for job in self.service.registry.list(tenant)]
                self._send_json(200, {"jobs": jobs})
            else:
                self._send_json(405, {"error": f"method {method} not allowed on {path}"})
            return
        match = _JOB_PATH.match(path)
        if match:
            tenant = self._tenant()
            if method == "GET":
                self._send_json(200, self.service.job(tenant, match.group(1)).to_dict())
            elif method == "DELETE":
                self._send_json(200, self.service.cancel(tenant, match.group(1)).to_dict())
            else:
                self._send_json(405, {"error": f"method {method} not allowed on {path}"})
            return
        match = _ARTIFACT_PATH.match(path)
        if match:
            if method != "GET":
                self._send_json(405, {"error": f"method {method} not allowed on {path}"})
                return
            text = self.service.artifact(self._tenant(), match.group(1), match.group(2))
            self._send_text(200, text)
            return
        self._send_json(404, {"error": f"no such endpoint: {method} {path}"})

    # ----------------------------------------------------------- http verbs
    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler contract
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def do_DELETE(self) -> None:  # noqa: N802
        self._dispatch("DELETE")


def make_server(
    service: CampaignService, host: str = "127.0.0.1", port: int = 0
) -> ThreadingHTTPServer:
    """Bind the API to ``host:port`` (port 0 picks a free one) -- not started.

    The caller owns the loop: ``server.serve_forever()`` to block, or run
    it on a thread (tests do) and ``server.shutdown()`` to stop.
    """
    server = ThreadingHTTPServer((host, port), _Handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def serve(
    data_dir: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8765,
    jobs_per_tenant: int = 1,
    workers: int = 2,
    verbose: bool = True,
) -> int:
    """Run the service until interrupted; returns a process exit status.

    SIGINT/SIGTERM (the CLI folds the latter into KeyboardInterrupt) stop
    the server, interrupt running jobs between records and requeue them --
    the next ``conferr serve`` on the same data dir resumes exactly where
    this one stopped.
    """
    service = CampaignService(
        data_dir, jobs_per_tenant=jobs_per_tenant, workers=workers
    ).start()
    server = make_server(service, host=host, port=port)
    server.verbose = verbose  # type: ignore[attr-defined]
    if verbose:
        print(
            f"conferr service on http://{host}:{server.server_address[1]} "
            f"(data dir: {data_dir}, {jobs_per_tenant} job(s)/tenant, "
            f"{workers} worker(s)); Ctrl-C to stop"
        )
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        service.stop()
    if verbose:
        print("conferr service stopped; queued/interrupted jobs resume on restart")
    return 0
