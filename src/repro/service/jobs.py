"""Job model and multi-tenant persistence for the campaign service.

A *job* is one submitted :class:`~repro.core.spec.ExperimentSpec` plus its
lifecycle state; the :class:`JobRegistry` owns every job of a service data
directory and persists each one as a small JSON document next to its
result store:

.. code-block:: text

    <data_dir>/tenants/<tenant>/jobs/<job_id>/
        job.json    # spec + state + progress snapshot
        store/      # the job's append-only ResultStore

State machine: ``QUEUED -> RUNNING -> DONE | FAILED | CANCELLED``, plus
``RUNNING -> QUEUED`` when the service is stopped (or killed) mid-job --
on the next startup the registry requeues every job found ``RUNNING`` on
disk, and the scheduler resumes it through the store's resume protocol, so
a ``kill -9`` costs at most the in-flight tail of records and never
duplicates a scenario.

``job.json`` is a *snapshot* (rewritten atomically, throttled during
record streams); the result store is always the authoritative record of
completed scenarios.  Tenants are isolated by directory: a tenant can only
ever list, poll, cancel or render its own jobs.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

from repro.core.spec import ExperimentSpec
from repro.errors import ServiceError

__all__ = [
    "JOB_STATES",
    "TERMINAL_STATES",
    "DEFAULT_TENANT",
    "validate_tenant",
    "CellProgress",
    "Job",
    "JobRegistry",
]

#: Every state a job can be in, in lifecycle order.
JOB_STATES = ("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED")
#: States a job never leaves.
TERMINAL_STATES = frozenset({"DONE", "FAILED", "CANCELLED"})

#: Tenant used when a request carries no ``X-Tenant`` header.
DEFAULT_TENANT = "default"
#: Tenant names double as directory names, so they are restricted to the
#: same alphabet store filenames use (no separators, no traversal).
_TENANT_RE = re.compile(r"[A-Za-z0-9._-]{1,64}")
_JOB_FILE = "job.json"
_STORE_DIR = "store"
#: Minimum seconds between two progress-driven ``job.json`` rewrites; the
#: store is the durable truth, the snapshot only serves restart listings.
_PROGRESS_SAVE_INTERVAL = 1.0


def validate_tenant(name: str) -> str:
    """Check a tenant name is usable as an isolated directory key."""
    # fullmatch, not match-with-$: "$" would accept a trailing newline;
    # "." and ".." pass the charset but are directory traversal, not names
    if not _TENANT_RE.fullmatch(name or "") or name in (".", ".."):
        raise ServiceError(
            f"invalid tenant {name!r}: tenant names are 1-64 characters "
            "from [A-Za-z0-9._-]"
        )
    return name


def cell_key(system: str, plugin: str) -> str:
    """Progress key of one (system, plugin) suite cell."""
    return f"{system}/{plugin}"


@dataclass
class CellProgress:
    """Live counters of one (system, plugin) cell of a running job.

    ``executed`` and ``quarantined`` tick per record as the suite streams;
    ``skipped`` (scenarios already on disk from a previous run) is only
    known once the cell's campaign finishes, so it stays None until then.
    """

    executed: int = 0
    quarantined: int = 0
    skipped: int | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "executed": self.executed,
            "quarantined": self.quarantined,
            "skipped": self.skipped,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CellProgress":
        return cls(
            executed=int(data.get("executed", 0)),
            quarantined=int(data.get("quarantined", 0)),
            skipped=data.get("skipped"),
        )


@dataclass
class Job:
    """One submitted experiment and its lifecycle state.

    Mutations go through :class:`JobRegistry` (which serializes them under
    its lock and persists the snapshot); treat instances as read-only
    elsewhere.  ``cancel_event`` is runtime-only: the scheduler's
    cancellation hook polls it between records.
    """

    id: str
    tenant: str
    spec: dict[str, Any]
    job_dir: Path
    state: str = "QUEUED"
    created_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    error: str | None = None
    #: Records released (appended + reported) by the *current* service
    #: process for this job; resets on restart, unlike the store itself.
    records: int = 0
    cells: dict[str, CellProgress] = field(default_factory=dict)
    #: Filled when the suite completes: total scenarios executed/skipped
    #: (a resumed job reports the replayed remainder here).
    result: dict[str, int] | None = None
    #: How many service restarts requeued this job mid-run.
    restarts: int = 0
    cancel_event: threading.Event = field(default_factory=threading.Event, repr=False)

    @property
    def store_dir(self) -> Path:
        return self.job_dir / _STORE_DIR

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "spec": self.spec,
            "created_at": self.created_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "restarts": self.restarts,
            "cancel_requested": self.cancel_event.is_set(),
            "progress": {
                "records": self.records,
                "cells": {key: cell.to_dict() for key, cell in sorted(self.cells.items())},
            },
            "result": self.result,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any], job_dir: Path) -> "Job":
        progress = data.get("progress") or {}
        cells = progress.get("cells") or {}
        return cls(
            id=str(data["id"]),
            tenant=str(data["tenant"]),
            spec=dict(data["spec"]),
            job_dir=job_dir,
            state=str(data.get("state", "QUEUED")),
            created_at=float(data.get("created_at", 0.0)),
            started_at=data.get("started_at"),
            finished_at=data.get("finished_at"),
            error=data.get("error"),
            records=int(progress.get("records", 0)),
            cells={
                str(key): CellProgress.from_dict(cell)
                for key, cell in cells.items()
                if isinstance(cell, Mapping)
            },
            result=data.get("result"),
            restarts=int(data.get("restarts", 0)),
        )


class JobRegistry:
    """Thread-safe, disk-backed registry of every job in a service data dir.

    All state transitions happen under one lock so the scheduler's claim
    (``QUEUED -> RUNNING``) can never race a client's cancel
    (``QUEUED -> CANCELLED``).  Loading a data directory requeues jobs
    found ``RUNNING`` -- they were interrupted by a crash or ``kill -9``
    and must resume.
    """

    def __init__(self, data_dir: str | Path):
        self.data_dir = Path(data_dir)
        self.lock = threading.RLock()
        self._jobs: dict[tuple[str, str], Job] = {}
        self._last_progress_save: dict[tuple[str, str], float] = {}
        self._load()

    # ------------------------------------------------------------------ layout
    @property
    def tenants_dir(self) -> Path:
        return self.data_dir / "tenants"

    def _tenant_jobs_dir(self, tenant: str) -> Path:
        return self.tenants_dir / tenant / "jobs"

    # ----------------------------------------------------------------- loading
    def _load(self) -> None:
        """Scan the data directory; requeue jobs interrupted mid-run."""
        self.data_dir.mkdir(parents=True, exist_ok=True)
        if not self.tenants_dir.is_dir():
            return
        for tenant_dir in sorted(self.tenants_dir.iterdir()):
            jobs_dir = tenant_dir / "jobs"
            if not jobs_dir.is_dir():
                continue
            for job_dir in sorted(jobs_dir.iterdir()):
                path = job_dir / _JOB_FILE
                if not path.is_file():
                    continue
                try:
                    job = Job.from_dict(
                        json.loads(path.read_text(encoding="utf-8")), job_dir
                    )
                except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                    continue  # half-written snapshot: the store still holds the records
                if job.state == "RUNNING":
                    # the previous service process died mid-job; the store's
                    # resume protocol replays only what is missing
                    job.state = "QUEUED"
                    job.restarts += 1
                    job.error = None
                    self._save(job)
                self._jobs[(job.tenant, job.id)] = job

    def _save(self, job: Job) -> None:
        """Atomically rewrite one job snapshot (tmp + rename)."""
        job.job_dir.mkdir(parents=True, exist_ok=True)
        path = job.job_dir / _JOB_FILE
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text(json.dumps(job.to_dict(), indent=2) + "\n", encoding="utf-8")
        os.replace(tmp, path)

    # -------------------------------------------------------------- life cycle
    def submit(self, tenant: str, spec: ExperimentSpec) -> Job:
        """Create, persist and enqueue a new job for a validated spec.

        The spec is stored *without* a store section -- the service owns
        store placement (``<job_dir>/store``), which is what makes tenant
        isolation and restart-resume unambiguous.
        """
        validate_tenant(tenant)
        job_id = uuid.uuid4().hex[:12]
        job_dir = self._tenant_jobs_dir(tenant) / job_id
        job = Job(
            id=job_id,
            tenant=tenant,
            spec=spec.to_dict(),
            job_dir=job_dir,
            created_at=time.time(),
        )
        # pre-populate the full cell matrix so pollers see the whole grid
        # (zeros) from the first GET, not cells popping up as they start
        for system in spec.systems:
            for plugin in spec.plugins:
                job.cells[cell_key(system.key, plugin.key)] = CellProgress()
        with self.lock:
            self._jobs[(tenant, job_id)] = job
            self._save(job)
        return job

    def get(self, tenant: str, job_id: str) -> Job | None:
        with self.lock:
            return self._jobs.get((tenant, job_id))

    def list(self, tenant: str) -> list[Job]:
        """One tenant's jobs, oldest first (tenants never see each other)."""
        with self.lock:
            jobs = [job for (owner, _), job in self._jobs.items() if owner == tenant]
        return sorted(jobs, key=lambda job: (job.created_at, job.id))

    def all_jobs(self) -> list[Job]:
        with self.lock:
            return list(self._jobs.values())

    def counts(self) -> dict[str, int]:
        """Jobs per state, across all tenants (the health endpoint)."""
        totals = {state: 0 for state in JOB_STATES}
        with self.lock:
            for job in self._jobs.values():
                totals[job.state] = totals.get(job.state, 0) + 1
        return totals

    def claim_next(self, jobs_per_tenant: int, max_running: int) -> Job | None:
        """Atomically claim the oldest runnable QUEUED job (-> RUNNING).

        A job is runnable when its tenant has fewer than ``jobs_per_tenant``
        jobs RUNNING and the service as a whole has fewer than
        ``max_running``.  FIFO within those caps.
        """
        with self.lock:
            running_by_tenant: dict[str, int] = {}
            total_running = 0
            for job in self._jobs.values():
                if job.state == "RUNNING":
                    running_by_tenant[job.tenant] = running_by_tenant.get(job.tenant, 0) + 1
                    total_running += 1
            if total_running >= max_running:
                return None
            queued = sorted(
                (job for job in self._jobs.values() if job.state == "QUEUED"),
                key=lambda job: (job.created_at, job.id),
            )
            for job in queued:
                if running_by_tenant.get(job.tenant, 0) < jobs_per_tenant:
                    job.state = "RUNNING"
                    job.started_at = time.time()
                    self._save(job)
                    return job
            return None

    def finish(self, job: Job, *, executed: int, skipped: int) -> None:
        with self.lock:
            job.state = "DONE"
            job.finished_at = time.time()
            job.result = {"executed": executed, "skipped": skipped}
            self._save(job)

    def fail(self, job: Job, error: str) -> None:
        with self.lock:
            job.state = "FAILED"
            job.finished_at = time.time()
            job.error = error
            self._save(job)

    def mark_cancelled(self, job: Job) -> None:
        with self.lock:
            job.state = "CANCELLED"
            job.finished_at = time.time()
            self._save(job)

    def requeue(self, job: Job) -> None:
        """Put an interrupted RUNNING job back in the queue (graceful stop)."""
        with self.lock:
            job.state = "QUEUED"
            job.started_at = None
            job.restarts += 1
            self._save(job)

    def request_cancel(self, job: Job) -> str:
        """Cancel a job: QUEUED dies immediately, RUNNING cooperatively.

        Returns the job's state after the request.  Cancelling a terminal
        job is an error (there is nothing left to stop).
        """
        with self.lock:
            if job.terminal:
                raise ServiceError(
                    f"job {job.id} is already {job.state} and cannot be cancelled"
                )
            if job.state == "QUEUED":
                job.cancel_event.set()
                self.mark_cancelled(job)
            else:  # RUNNING: the scheduler's cancel_check raises CancelledRun
                job.cancel_event.set()
                self._save(job)
            return job.state

    # ---------------------------------------------------------------- progress
    def record_progress(self, job: Job, system: str, plugin: str, quarantined: bool) -> None:
        """Tick one job's live counters for a freshly released record.

        Snapshot writes are throttled (at most one per second per job):
        the record itself is already durable in the job's store, the
        snapshot only has to stay roughly current for restart listings.
        """
        key = (job.tenant, job.id)
        with self.lock:
            cell = job.cells.setdefault(cell_key(system, plugin), CellProgress())
            if quarantined:
                cell.quarantined += 1
            else:
                cell.executed += 1
            job.records += 1
            now = time.monotonic()
            if now - self._last_progress_save.get(key, 0.0) >= _PROGRESS_SAVE_INTERVAL:
                self._last_progress_save[key] = now
                self._save(job)

    def finish_cells(
        self,
        job: Job,
        executed: Mapping[str, Mapping[str, int]],
        skipped: Mapping[str, Mapping[str, int]],
    ) -> None:
        """Fold a completed suite's exact per-cell counts into the job.

        ``executed`` here replaces the live tick counts (they agree for a
        clean run; after a mid-run restart the live counts only cover this
        process's records, while the suite reports the whole resumed cell).
        """
        with self.lock:
            for system, per_plugin in executed.items():
                for plugin, count in per_plugin.items():
                    cell = job.cells.setdefault(cell_key(system, plugin), CellProgress())
                    cell.executed = count
            for system, per_plugin in skipped.items():
                for plugin, count in per_plugin.items():
                    cell = job.cells.setdefault(cell_key(system, plugin), CellProgress())
                    cell.skipped = count
            self._save(job)
