"""A tiny stdlib client for the campaign service HTTP API.

Used by the tests, the CI smoke script and the service benchmark; handy
interactively too::

    from repro.service import ServiceClient
    client = ServiceClient("http://127.0.0.1:8765", tenant="alice")
    job = client.submit(open("examples/specs/paper_suite.toml").read())
    job = client.wait(job["id"])
    print(client.artifact(job["id"], "table1"))

Only :mod:`urllib.request` underneath -- no new dependencies.  Error
responses raise :class:`ServiceClientError` carrying the HTTP status and
the decoded JSON payload (for a 400 that payload *is* the
``validate --json`` report).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from repro.errors import ServiceError
from repro.service.jobs import DEFAULT_TENANT, TERMINAL_STATES

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(ServiceError):
    """An HTTP error from the service, with the decoded response attached."""

    def __init__(self, status: int, payload: Any):
        self.status = status
        self.payload = payload
        if isinstance(payload, dict) and "error" in payload:
            detail = payload["error"]
        else:
            detail = json.dumps(payload)
        super().__init__(f"service returned HTTP {status}: {detail}")

    def __reduce__(self):
        # super().__init__ collapses (status, payload) into one formatted
        # message string, so default pickling would try to rebuild the
        # instance as cls(message) and fail on the missing argument
        return (type(self), (self.status, self.payload))


class ServiceClient:
    """Talks to one service as one tenant.

    ``base_url`` is the service root (e.g. ``http://127.0.0.1:8765``);
    ``tenant`` becomes the ``X-Tenant`` header on every request.
    """

    def __init__(
        self,
        base_url: str,
        *,
        tenant: str = DEFAULT_TENANT,
        timeout: float = 30.0,
    ):
        self.base_url = base_url.rstrip("/")
        self.tenant = tenant
        self.timeout = timeout

    # ---------------------------------------------------------------- plumbing
    def _request(
        self,
        method: str,
        path: str,
        *,
        body: bytes | None = None,
        content_type: str | None = None,
    ) -> tuple[int, str, str]:
        request = urllib.request.Request(
            self.base_url + path, data=body, method=method
        )
        request.add_header("X-Tenant", self.tenant)
        if content_type is not None:
            request.add_header("Content-Type", content_type)
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return (
                    response.status,
                    response.read().decode("utf-8"),
                    response.headers.get("Content-Type", ""),
                )
        except urllib.error.HTTPError as exc:
            text = exc.read().decode("utf-8")
            try:
                payload = json.loads(text)
            except json.JSONDecodeError:
                payload = {"error": text}
            raise ServiceClientError(exc.code, payload) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: {exc.reason}"
            ) from None

    def _json(self, method: str, path: str, *, body: bytes | None = None,
              content_type: str | None = None) -> Any:
        _, text, _ = self._request(method, path, body=body, content_type=content_type)
        return json.loads(text)

    # -------------------------------------------------------------- operations
    def health(self) -> dict[str, Any]:
        return self._json("GET", "/healthz")

    def submit(self, spec: dict[str, Any] | str) -> dict[str, Any]:
        """Submit a spec: a dict (sent as JSON) or a TOML document string."""
        if isinstance(spec, dict):
            body = json.dumps(spec).encode("utf-8")
            content_type = "application/json"
        else:
            body = spec.encode("utf-8")
            content_type = "application/toml"
        return self._json("POST", "/jobs", body=body, content_type=content_type)

    def jobs(self) -> list[dict[str, Any]]:
        return self._json("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict[str, Any]:
        return self._json("GET", f"/jobs/{job_id}")

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self._json("DELETE", f"/jobs/{job_id}")

    def artifact(self, job_id: str, name: str) -> str:
        """Fetch a rendered artifact (``table1`` ... ``report``) as text."""
        _, text, _ = self._request("GET", f"/jobs/{job_id}/{name}")
        return text

    def wait(
        self, job_id: str, *, timeout: float = 300.0, poll: float = 0.2
    ) -> dict[str, Any]:
        """Poll until the job reaches a terminal state; returns the job doc."""
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                return job
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {job['state']} after {timeout:.0f}s"
                )
            time.sleep(poll)
